"""The TransparentLLM simulator and its token-by-token generation session.

The session realizes the paper's generation protocol exactly:

* constrained decoding — proposals always extend a valid candidate item;
* branching points — the first token where the proposal diverges from the
  gold stream (while the committed prefix is still gold-aligned);
* teacher forcing — ``force_token`` replaces a branching proposal with
  the gold token, the causal error event is consumed, and the plan
  re-aligns so generation continues (possibly to err again at a later
  slot, yielding the multi-branching-point generations of Figure 3b);
* free running — committing a branching proposal lets the generation
  walk off the gold path (what an unprotected linker does).

Trace synthesis is two-phase (``hidden-v2``). The **symbolic phase**
walks the error plan and emits the token stream, branching labels,
forced flags and per-token ``(item_index, within_index,
decision_point)`` metadata — pure Python control flow, no numpy. The
**vectorized observable phase** then synthesizes every hidden state and
softmax probability for the whole trace in one shot through the
:class:`~repro.llm.hidden.HiddenStateSynthesizer` batch APIs, storing
hidden states columnar (one ``(n, n_layers, dim)`` tensor; the per-step
``hidden`` attributes are views into it). ``TransparentLLM.generate``
and ``teacher_forced_trace`` take this fast path; the incremental
:class:`GenerationSession` (used by the inference-time pipeline, which
must read observables before deciding to commit) computes the same
values token by token from the same trace-level streams and doubles as
the bit-exact reference oracle (``generate_scalar`` /
``teacher_forced_trace_scalar``).

Consumers read tokens, hidden states and softmax probabilities; the
internal error plan is never exposed to inference-time components.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.linking.instance import SchemaLinkingInstance
from repro.llm.errors import (
    ErrorEvent,
    ErrorModelConfig,
    INSERT,
    OMIT,
    error_propensity,
    plan_errors,
)
from repro.llm.hidden import (
    SIMULATOR_VERSION,
    HiddenConfig,
    HiddenStateSynthesizer,
)
from repro.llm.tokenizer import EOS, SEP, detokenize, tokenize_identifier, tokenize_items
from repro.llm.trie import ItemTrie
from repro.utils.rng import stable_hash

__all__ = [
    "SIMULATOR_VERSION",
    "LLMConfig",
    "GenerationStep",
    "GenerationTrace",
    "GenerationSession",
    "TransparentLLM",
]


@dataclass(frozen=True)
class LLMConfig:
    """Simulated model configuration."""

    name: str = "sim-deepseek-7b"
    hidden: HiddenConfig = field(default_factory=HiddenConfig)
    errors: ErrorModelConfig = field(default_factory=ErrorModelConfig)


@dataclass
class GenerationStep:
    """One decoding step: the proposal plus its observables.

    ``is_branching`` is ground truth derived from gold comparison; it is
    recorded for label construction (D_branch) and evaluation, and must
    not be read by inference-time components (the probes exist precisely
    to predict it from ``hidden``).

    ``hidden`` is ``None`` only transiently, on steps of a
    deferred-observable (symbolic-phase) session that has not been
    finalized yet; every trace returned by a public API has it filled.
    """

    position: int
    proposed: str
    hidden: "np.ndarray | None"
    max_prob: float
    item_index: int
    within_index: int
    is_branching: bool
    committed: "str | None" = None
    forced: bool = False
    decision_point: bool = True


@dataclass
class GenerationTrace:
    """A finished (or aborted) generation.

    ``hidden_stack`` is the columnar ``(n_steps, n_layers, dim)`` hidden
    tensor when the trace came off the vectorized fast path (each
    ``step.hidden`` is a view of one row); traces assembled step-by-step
    leave it ``None`` and :meth:`hidden_matrix` stacks on demand.
    """

    instance_id: str
    steps: list[GenerationStep]
    aborted: bool = False
    hidden_stack: "np.ndarray | None" = None

    @property
    def committed_tokens(self) -> tuple[str, ...]:
        return tuple(s.committed for s in self.steps if s.committed is not None)

    @property
    def items(self) -> tuple[str, ...]:
        return tuple(detokenize(self.committed_tokens))

    @property
    def n_branching(self) -> int:
        return sum(1 for s in self.steps if s.is_branching)

    def hidden_matrix(self) -> np.ndarray:
        """Stack of hidden states, shape (n_steps, n_layers, dim)."""
        if self.hidden_stack is not None:
            return self.hidden_stack
        if not self.steps:
            return np.zeros((0, 0, 0))
        return np.stack([s.hidden for s in self.steps])

    def max_probs(self) -> np.ndarray:
        return np.array([s.max_prob for s in self.steps], dtype=float)

    def branching_labels(self) -> np.ndarray:
        return np.array([s.is_branching for s in self.steps], dtype=bool)


@dataclass
class _PlannedItem:
    name: str
    tokens: tuple[str, ...]
    slot: int
    event: "ErrorEvent | None"


class GenerationSession:
    """Stateful token-by-token generation for one linking instance.

    With ``observables=True`` (the default, what the inference-time
    pipeline needs) every proposal carries its hidden states and softmax
    probability, computed incrementally from one set of trace-level
    streams held by the session. With ``observables=False`` the session
    is the pure symbolic phase: the walk touches no numpy at all and
    :meth:`TransparentLLM._finalize_trace` fills all observables in one
    vectorized pass afterwards. ``stream_reuse=False`` is the reference
    oracle: every token's observables are evaluated independently
    through the per-token synthesizer API (fresh streams per call) —
    the pure-function definition the other two modes must reproduce
    bit-exactly, at per-token scalar cost.
    """

    def __init__(
        self,
        llm: "TransparentLLM",
        instance: SchemaLinkingInstance,
        events: "list[ErrorEvent] | None" = None,
        observables: bool = True,
        stream_reuse: bool = True,
    ):
        self.llm = llm
        self.instance = instance
        self._trie: "ItemTrie | None" = None
        self._gold_items = instance.gold_items
        self._gold_stream = tokenize_items(instance.gold_items)
        self._gold_tags = self._annotate_gold()
        self._events: dict[int, ErrorEvent] = {
            e.slot: e for e in (events if events is not None else [])
        }
        self._consumed: set[int] = set()
        self._queue: deque[_PlannedItem] = deque(self._plan(0))
        self._need_sep = False
        self._within = 0
        self._last_popped_event: "ErrorEvent | None" = None
        self._aligned = True
        self.steps: list[GenerationStep] = []
        self._n_committed = 0
        # Incremental decoded-item tracking: committing a full-prefix
        # detokenize per proposal made long sessions O(n²).
        self._item_index = 0
        self._item_open = False
        self._pending: "GenerationStep | None" = None
        self.done = False
        self.aborted = False
        self.observables = observables
        self._streams = (
            llm.hidden.trace_streams(instance.instance_id)
            if observables and stream_reuse
            else None
        )
        # The model's instance-level "nervousness" drives the rate of
        # spurious uncertainty signals at decision points (see hidden.py).
        self.nervousness = error_propensity(
            instance.features, instance.task, instance.difficulty, llm.config.errors
        )

    @property
    def trie(self) -> ItemTrie:
        """The constrained-decoding trie over the candidate items.

        Built lazily: the generation walk itself proposes only planned
        (always trie-valid) tokens, so sessions that are never asked for
        the trie skip its construction cost entirely.
        """
        if self._trie is None:
            self._trie = ItemTrie(self.instance.candidates)
        return self._trie

    # -- planning -------------------------------------------------------------

    def _annotate_gold(self) -> list[tuple]:
        """Tag each gold-stream position: (kind, gold item index, offset)."""
        tags: list[tuple] = []
        for g, item in enumerate(self._gold_items):
            if g:
                tags.append(("sep", g, 0))
            for o, _tok in enumerate(tokenize_identifier(item)):
                tags.append(("item", g, o))
        tags.append(("eos", len(self._gold_items), 0))
        return tags

    def _plan(self, start_slot: int) -> list[_PlannedItem]:
        """Planned items for gold slots >= start_slot with live events."""
        out: list[_PlannedItem] = []
        n = len(self._gold_items)
        for slot in range(start_slot, n):
            event = self._events.get(slot)
            if event is not None and slot in self._consumed:
                event = None
            gold = self._gold_items[slot]
            if event is None:
                out.append(_PlannedItem(gold, tokenize_identifier(gold), slot, None))
            elif event.kind == OMIT:
                continue
            elif event.kind == INSERT:
                out.append(
                    _PlannedItem(
                        event.payload, tokenize_identifier(event.payload), slot, event
                    )
                )
                out.append(_PlannedItem(gold, tokenize_identifier(gold), slot, None))
            else:  # substitute
                out.append(
                    _PlannedItem(
                        event.payload, tokenize_identifier(event.payload), slot, event
                    )
                )
        eos_event = self._events.get(n)
        if eos_event is not None and n not in self._consumed and start_slot <= n:
            out.append(
                _PlannedItem(
                    eos_event.payload,
                    tokenize_identifier(eos_event.payload),
                    n,
                    eos_event,
                )
            )
        return out

    # -- observables -------------------------------------------------------------

    @property
    def n_committed(self) -> int:
        return self._n_committed

    @property
    def committed_tokens(self) -> tuple[str, ...]:
        return tuple(s.committed for s in self.steps if s.committed is not None)

    @property
    def aligned(self) -> bool:
        """Whether the committed prefix still equals the gold prefix."""
        return self._aligned

    def decoded_items(self) -> list[str]:
        return detokenize(self.committed_tokens)

    @property
    def item_index(self) -> int:
        """``len(decoded_items())``, maintained incrementally per commit."""
        return self._item_index

    # -- decoding -------------------------------------------------------------

    def _intended_token(self) -> str:
        if self._need_sep:
            return SEP
        if not self._queue:
            return EOS
        return self._queue[0].tokens[self._within]

    def propose(self) -> GenerationStep:
        """Compute (or return the cached) next proposal with observables."""
        if self.done:
            raise RuntimeError("generation already finished")
        if self._pending is not None:
            return self._pending
        token = self._intended_token()
        is_branching = (
            self._aligned
            and self._n_committed < len(self._gold_stream)
            and token != self._gold_stream[self._n_committed]
        )
        decision_point = self._need_sep or not self._queue or self._within == 0
        if self.observables:
            hidden = self.llm.hidden.hidden_states(
                self.instance.instance_id,
                self._n_committed,
                token,
                self.steps[-1].committed if self.steps else "<bos>",
                self._item_index,
                self._within,
                is_branching,
                decision_point=decision_point,
                nervousness=self.nervousness,
                streams=self._streams,
            )
            max_prob = self.llm.hidden.max_prob(
                self.instance.instance_id,
                self._n_committed,
                is_branching,
                streams=self._streams,
            )
        else:  # symbolic phase: observables are filled in one batch later
            hidden = None
            max_prob = 0.0
        step = GenerationStep(
            position=self._n_committed,
            proposed=token,
            hidden=hidden,
            max_prob=max_prob,
            item_index=self._item_index,
            within_index=self._within,
            is_branching=is_branching,
            decision_point=decision_point,
        )
        self._pending = step
        return step

    def _advance_planned(self) -> None:
        """Move the planned cursor past the token just committed."""
        if self._need_sep:
            self._need_sep = False
            return
        if not self._queue:
            self.done = True
            return
        self._within += 1
        if self._within >= len(self._queue[0].tokens):
            popped = self._queue.popleft()
            self._last_popped_event = popped.event
            self._within = 0
            self._need_sep = bool(self._queue)
        else:
            self._last_popped_event = None

    def _count_committed(self, token: str) -> None:
        """Keep ``item_index`` equal to ``len(decoded_items())``."""
        if token == SEP:
            self._item_open = False
        elif token != EOS and not self._item_open:
            self._item_index += 1
            self._item_open = True

    def commit(self) -> GenerationStep:
        """Accept the pending proposal as the model's output token."""
        step = self.propose()
        step.committed = step.proposed
        self.steps.append(step)
        self._pending = None
        if step.is_branching:
            self._aligned = False
        if self._aligned and step.committed == EOS:
            self.done = True
        self._n_committed += 1
        self._count_committed(step.committed)
        self._advance_planned()
        return step

    def force_token(self, token: str) -> GenerationStep:
        """Commit ``token`` instead of the proposal (teacher forcing).

        Only gold-aligned corrections are supported: the committed prefix
        must still match gold and ``token`` must be the next gold token.
        The error event that caused the divergence is consumed and the
        generation plan re-aligns to the gold path.
        """
        if not self._aligned:
            raise RuntimeError("cannot force after the generation diverged")
        if self._n_committed >= len(self._gold_stream):
            raise RuntimeError("gold stream exhausted")
        expected = self._gold_stream[self._n_committed]
        if token != expected:
            raise ValueError(
                f"forced token {token!r} is not the gold continuation {expected!r}"
            )
        step = self.propose()
        if not step.is_branching:
            # Proposal already agreed with gold; forcing is a plain commit.
            return self.commit()
        event = self._causal_event()
        if event is not None:
            self._consumed.add(event.slot)
        step.committed = token
        step.forced = True
        self.steps.append(step)
        self._pending = None
        self._n_committed += 1
        self._count_committed(step.committed)
        self._realign()
        return step

    def _causal_event(self) -> "ErrorEvent | None":
        """The error event responsible for the current divergence.

        Under teacher forcing, events fire (and are consumed) in slot
        order, so the cause is the earliest unconsumed event whose slot
        is at or before the gold item the divergence lands in. (Simply
        taking the current planned item's event is wrong when, e.g., an
        omission at slot 0 puts the slot-1 substitution payload at the
        head of the plan.)
        """
        _kind, g, _o = self._gold_tags[self._n_committed]
        candidates = [
            (slot, event)
            for slot, event in self._events.items()
            if slot <= g and slot not in self._consumed
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda pair: pair[0])[1]

    def _realign(self) -> None:
        """Rebuild the plan on the gold path after a forced correction."""
        self._last_popped_event = None
        kind, g, o = self._gold_tags[self._n_committed - 1]
        if kind == "eos":
            self.done = True
            self._queue = deque()
            return
        if kind == "sep":
            self._queue = deque(self._plan(g))
            self._need_sep = False
            self._within = 0
            return
        # Mid-item: continue the gold item from offset o + 1.
        gold = self._gold_items[g]
        tokens = tokenize_identifier(gold)
        if o + 1 >= len(tokens):
            self._queue = deque(self._plan(g + 1))
            self._need_sep = bool(self._queue)
            self._within = 0
        else:
            self._queue = deque([_PlannedItem(gold, tokens, g, None)])
            self._queue.extend(self._plan(g + 1))
            self._need_sep = False
            self._within = o + 1

    def peek_tokens(self, max_tokens: int = 64) -> list[str]:
        """The tokens the model intends to emit next, without committing.

        The first peeked token equals the current proposal. Used by
        Algorithm 2 (Table Trace Back), which must inspect the model's
        upcoming item before the pipeline decides whether to commit it.
        """
        queue = deque(item.tokens for item in self._queue)
        need_sep, within = self._need_sep, self._within
        out: list[str] = []
        while len(out) < max_tokens:
            if need_sep:
                out.append(SEP)
                need_sep = False
                continue
            if not queue:
                out.append(EOS)
                break
            tokens = queue[0]
            out.append(tokens[within])
            within += 1
            if within >= len(tokens):
                queue.popleft()
                within = 0
                need_sep = bool(queue)
        return out

    def abort(self) -> None:
        """Stop generating (the abstention action)."""
        self.done = True
        self.aborted = True
        self._pending = None

    def run_to_completion(self) -> None:
        """Commit proposals until EOS (free generation)."""
        while not self.done:
            self.commit()

    def run_teacher_forced(self) -> None:
        """Walk the §3.1 protocol: force every divergence back to gold."""
        while not self.done:
            step = self.propose()
            if step.is_branching:
                self.force_token(self._gold_stream[self._n_committed])
            else:
                self.commit()

    def trace(self) -> GenerationTrace:
        return GenerationTrace(
            instance_id=self.instance.instance_id,
            steps=self.steps,
            aborted=self.aborted,
        )


class TransparentLLM:
    """The simulated fine-tuned schema-linking model (see DESIGN.md §2)."""

    # Bit-level identity of trace synthesis; part of the backend
    # identity and persistent-cache namespace (see llm/hidden.py).
    version = SIMULATOR_VERSION

    # Bound on the memoized error plans (distinct generation inputs).
    # Plans are pure functions of (seed, instance), so eviction is
    # value-safe — an evicted plan is re-planned bit-identically.
    plan_cache_cap = 4096

    def __init__(self, config: "LLMConfig | None" = None, seed: int = 0):
        self.config = config or LLMConfig()
        self.seed = seed
        self.hidden = HiddenStateSynthesizer(self.config.hidden, seed)
        self._plan_cache: dict = {}

    @property
    def n_layers(self) -> int:
        return self.config.hidden.n_layers

    def plan(self, instance: SchemaLinkingInstance) -> list[ErrorEvent]:
        """The (private) error plan for an instance — used by sessions.

        Memoized (bounded, FIFO): ``RTSPipeline.link`` starts several
        sessions over the same instance (the unassisted baseline plus
        the protected pass), and planning — distractor similarity scans
        over the candidate universe — was a measurable slice of every
        generation. The key hashes the full generation input (task,
        candidates, gold), mirroring the runtime cache's instance key.
        """
        key = (
            instance.instance_id,
            stable_hash(instance.task, instance.candidates, instance.gold_items),
        )
        events = self._plan_cache.get(key)
        if events is None:
            events = plan_errors(instance, self.seed, self.config.errors)
            while len(self._plan_cache) >= self.plan_cache_cap:
                # pop with a default: concurrent sessions may race on
                # eviction (values are deterministic, so any outcome is
                # correct).
                self._plan_cache.pop(next(iter(self._plan_cache)), None)
            self._plan_cache[key] = events
        return list(events)

    def start_session(self, instance: SchemaLinkingInstance) -> GenerationSession:
        return GenerationSession(self, instance, self.plan(instance))

    # -- the vectorized two-phase fast path ------------------------------------

    def _symbolic_session(self, instance: SchemaLinkingInstance) -> GenerationSession:
        return GenerationSession(
            self, instance, self.plan(instance), observables=False
        )

    def _finalize_trace(self, session: GenerationSession) -> GenerationTrace:
        """Phase two: batch-synthesize observables for a symbolic walk."""
        steps = session.steps
        iid = session.instance.instance_id
        if not steps:
            return GenerationTrace(
                instance_id=iid,
                steps=steps,
                aborted=session.aborted,
                hidden_stack=np.zeros((0, 0, 0)),
            )
        tokens = [s.proposed for s in steps]
        prev_tokens = ["<bos>"] + [s.committed for s in steps[:-1]]
        item_indexes = [s.item_index for s in steps]
        within_indexes = [s.within_index for s in steps]
        labels = [s.is_branching for s in steps]
        decisions = [s.decision_point for s in steps]
        streams = self.hidden.trace_streams(iid)
        hidden = self.hidden.hidden_states_batch(
            iid,
            tokens,
            prev_tokens,
            item_indexes,
            within_indexes,
            labels,
            decisions,
            nervousness=session.nervousness,
            streams=streams,
        )
        probs = self.hidden.max_probs_batch(iid, labels, streams=streams)
        for step, view, prob in zip(steps, hidden, probs.tolist()):
            step.hidden = view
            step.max_prob = prob
        return GenerationTrace(
            instance_id=iid,
            steps=steps,
            aborted=session.aborted,
            hidden_stack=hidden,
        )

    def generate(self, instance: SchemaLinkingInstance) -> GenerationTrace:
        """Free-running generation: what an unprotected linker outputs."""
        session = self._symbolic_session(instance)
        session.run_to_completion()
        return self._finalize_trace(session)

    def teacher_forced_trace(self, instance: SchemaLinkingInstance) -> GenerationTrace:
        """Generation under the paper's §3.1 label-collection protocol.

        Every divergence from gold is recorded as a branching point and
        corrected in place, so the trace visits the full gold stream and
        labels every token — the raw material of D_branch.
        """
        session = self._symbolic_session(instance)
        session.run_teacher_forced()
        return self._finalize_trace(session)

    # -- the scalar reference oracle -------------------------------------------

    def _scalar_session(self, instance: SchemaLinkingInstance) -> GenerationSession:
        return GenerationSession(
            self, instance, self.plan(instance), stream_reuse=False
        )

    def generate_scalar(self, instance: SchemaLinkingInstance) -> GenerationTrace:
        """Free generation with independent per-token synthesis.

        The reference oracle: every token's observables are evaluated
        through the scalar synthesizer API with fresh streams — the
        pure-function definition of the trace, at per-token cost. Both
        the vectorized :meth:`generate` and the incremental
        :meth:`start_session` walk must reproduce it bit-exactly.
        """
        session = self._scalar_session(instance)
        session.run_to_completion()
        return session.trace()

    def teacher_forced_trace_scalar(
        self, instance: SchemaLinkingInstance
    ) -> GenerationTrace:
        """Teacher forcing with independent per-token synthesis."""
        session = self._scalar_session(instance)
        session.run_teacher_forced()
        return session.trace()
