"""Per-layer hidden-state synthesis (simulator identity ``hidden-v2``).

The simulator emits an ``(n_layers, dim)`` hidden-state stack per
generated token, constructed so that:

* a fixed per-layer random projection of token/context features gives
  each layer realistic, token-dependent structure (probes must separate
  signal from this variation — they genuinely *learn*);
* at branching tokens an *uncertainty direction* is added, with strength
  drawn per event (some branching points are faint) and a per-layer gain
  profile peaking in mid-late layers, as the probing literature the paper
  cites reports for real LLMs;
* a small rate of non-branching tokens receives a weak spurious signal,
  so the probes' false-positive behaviour (and hence EAR) is non-trivial;
* the next-token softmax max-probability is over-confident for correct
  AND wrong tokens (Figure 3a), which is what defeats logit-based
  uncertainty baselines and motivates hidden-state probing.

Randomness comes from *trace-level named streams* (``hidden-v2``): one
:func:`~repro.utils.rng.spawn` per (stream name, instance) yields a
prefix-extendable array covering every position of the trace — e.g.
``spawn(seed, "noise", instance_id)`` produces the whole ``(n, n_layers,
dim)`` noise tensor in one draw — instead of three fresh generators per
token.  Position ``p`` of a stream is the same value whether the stream
is materialized one token at a time (the incremental
:class:`~repro.llm.model.GenerationSession`) or all at once (the batch
APIs below), so the scalar session remains a bit-exact reference oracle
for the vectorized two-phase fast path.  Everything stays a pure
function of (model seed, instance id, position): traces are
bit-reproducible within a simulator version.  ``hidden-v2`` changed the
bit-level trace content relative to the per-token v1 scheme, which is
why :data:`SIMULATOR_VERSION` participates in the backend identity and
persistent-cache namespaces (old stores are simply not consulted).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import spawn

__all__ = [
    "SIMULATOR_VERSION",
    "HiddenConfig",
    "HiddenStateSynthesizer",
    "TraceStreams",
]

# Bit-level identity of the synthesized observables. Bumped whenever the
# mapping (seed, instance, position) -> (hidden, max_prob) changes, so
# persistent-cache namespaces and backend identities never mix traces
# from different schemes. v2: trace-level named streams + vectorized
# two-phase synthesis (see the module docstring).
SIMULATOR_VERSION = "hidden-v2"

# Default bound on the synthesizer's embedding cache (distinct
# (kind, text) entries). Embeddings are pure functions of their key, so
# eviction is value-safe — a re-request is recomputed bit-identically.
EMBED_CACHE_CAP = 4096


@dataclass(frozen=True)
class HiddenConfig:
    """Architecture and signal parameters of the simulated model."""

    n_layers: int = 12
    dim: int = 32
    token_embed_dim: int = 12
    prev_embed_dim: int = 6
    instance_embed_dim: int = 6
    noise_scale: float = 0.45
    signal_base: float = 2.4
    # Per-layer gain profile (length n_layers); mid-late peak.
    layer_gains: tuple[float, ...] = (
        0.05, 0.10, 0.22, 0.38, 0.60, 0.85, 1.00, 1.08, 1.02, 0.85, 0.62, 0.40,
    )
    # Branching-signal strength is lognormal with a heavy lower tail
    # (sigma below): some branching points are intrinsically faint. A
    # small extra mixture of near-invisible ones models the genuinely
    # undetectable errors. Keeping the tail *continuous* matters: a
    # bimodal strength distribution makes the conformal class-1 quantile
    # collapse to "include everything" right at alpha = 0.1.
    signal_sigma: float = 0.40
    faint_signal_rate: float = 0.03  # branching tokens that are hard to detect
    faint_signal_scale: float = 0.35
    # Spurious (false) uncertainty fires only at *decision points* — item
    # starts and the continue/stop choices at SEP/EOS — where a real
    # model's next-token entropy concentrates; mid-item tokens are
    # trie-constrained continuations. The rate scales with the instance's
    # error propensity (the model is nervous on hard instances even when
    # it gets them right) and decays geometrically with the item index
    # (uncertainty is front-loaded: once the first items are settled the
    # continuation is increasingly determined), keeping the per-generation
    # false-flag mass roughly constant across output lengths.
    # Of the spurious signals, ``spurious_real_fraction`` are drawn from
    # the *same* strength distribution as true branching signals (false
    # uncertainty feels exactly like true uncertainty to a probe); the
    # remainder are weak. This makes the false-flag rate self-calibrating
    # — those lookalikes cross the conformal threshold whenever real
    # signals do — so instance-level FAR is stable across tasks and
    # benchmarks instead of hinging on where the class-1 quantile lands.
    spurious_rate: float = 0.07
    spurious_real_fraction: float = 0.5
    spurious_weak_scale: float = 0.25
    spurious_nervousness_floor: float = 0.4
    spurious_nervousness_gain: float = 2.8
    spurious_item_decay: float = 0.5
    # Overconfident softmax (Figure 3a): Beta deficit parameters. The two
    # distributions overlap almost completely — a fine-tuned linker is
    # confident regardless of correctness — which is precisely what makes
    # probability thresholding useless as a branching detector (§3.1).
    prob_correct_beta: tuple[float, float, float] = (1.0, 16.0, 0.08)
    prob_branch_beta: tuple[float, float, float] = (1.0, 12.0, 0.10)

    def __post_init__(self) -> None:
        if len(self.layer_gains) != self.n_layers:
            raise ValueError(
                f"layer_gains has {len(self.layer_gains)} entries for "
                f"{self.n_layers} layers"
            )

    @property
    def feature_dim(self) -> int:
        # token + prev + instance embeds, 4 positional, item idx, within idx.
        return (
            self.token_embed_dim
            + self.prev_embed_dim
            + self.instance_embed_dim
            + 4
            + 2
        )


class _Stream:
    """One prefix-extendable random array (lazily grown, never redrawn).

    The generator itself is spawned on first use — a stream a trace
    never reads (e.g. signal magnitudes of a clean, quiet generation)
    costs nothing. Extension relies on a numpy property the test suite
    pins: filling an array from a ``Generator`` draws
    element-sequentially, so extending a retained generator by ``k``
    more rows yields exactly the tail of a one-shot ``n + k``-row draw
    from a fresh generator with the same seed.
    """

    __slots__ = ("_spawn", "_rng", "_draw", "_buf")

    def __init__(self, spawn_rng, draw):
        self._spawn = spawn_rng  # () -> fresh Generator for this stream
        self._rng: "np.random.Generator | None" = None
        self._draw = draw  # draw(rng, k) -> array with k leading rows
        self._buf: "np.ndarray | None" = None

    def take(self, n: int) -> np.ndarray:
        """The first ``n`` rows of this stream (amortized O(n) growth).

        A whole-trace batch call draws exactly once; the incremental
        session's growing prefixes double the buffer, so per-token reads
        stay O(1) amortized.
        """
        if self._buf is None:
            self._rng = self._spawn()
            self._buf = self._draw(self._rng, max(n, 1))
        elif len(self._buf) < n:
            grow = max(n - len(self._buf), len(self._buf))
            self._buf = np.concatenate([self._buf, self._draw(self._rng, grow)])
        return self._buf[:n]


class TraceStreams:
    """The named random streams of one generation trace (``hidden-v2``).

    Each stream is an independent :func:`~repro.utils.rng.spawn` keyed by
    (model seed, stream name, instance id) and indexed by token position.
    Fixed per-token consumption — every position always owns one noise
    block, one signal normal, two signal uniforms and one beta draw per
    probability class — is what makes the incremental session and the
    whole-trace batch APIs read identical values.
    """

    def __init__(self, seed: int, instance_id: str, config: HiddenConfig):
        layers, dim = config.n_layers, config.dim
        a_c, b_c, _ = config.prob_correct_beta
        a_b, b_b, _ = config.prob_branch_beta
        self._noise = _Stream(
            lambda: spawn(seed, "noise", instance_id),
            lambda rng, k: rng.normal(size=(k, layers, dim)),
        )
        self._signal_z = _Stream(
            lambda: spawn(seed, "signal", instance_id, "z"),
            lambda rng, k: rng.normal(size=k),
        )
        self._signal_u = _Stream(
            lambda: spawn(seed, "signal", instance_id, "u"),
            lambda rng, k: rng.random(size=(k, 2)),
        )
        self._prob_correct = _Stream(
            lambda: spawn(seed, "prob", instance_id, "correct"),
            lambda rng, k: rng.beta(a_c, b_c, size=k),
        )
        self._prob_branch = _Stream(
            lambda: spawn(seed, "prob", instance_id, "branch"),
            lambda rng, k: rng.beta(a_b, b_b, size=k),
        )

    def noise(self, n: int) -> np.ndarray:
        """Positions ``0..n-1`` of the ``(n, n_layers, dim)`` noise tensor."""
        return self._noise.take(n)

    def signal_z(self, n: int) -> np.ndarray:
        """Per-position standard normals driving signal magnitudes."""
        return self._signal_z.take(n)

    def signal_u(self, n: int) -> np.ndarray:
        """Per-position ``(n, 2)`` uniforms: (faint/rate check, lookalike)."""
        return self._signal_u.take(n)

    def prob_correct(self, n: int) -> np.ndarray:
        """Per-position Beta deficits for non-branching tokens."""
        return self._prob_correct.take(n)

    def prob_branch(self, n: int) -> np.ndarray:
        """Per-position Beta deficits for branching tokens."""
        return self._prob_branch.take(n)


class HiddenStateSynthesizer:
    """Deterministic hidden-state and softmax-probability generator.

    The per-token methods (``hidden_states``, ``signal_strength``,
    ``max_prob``) and the whole-trace batch APIs (``hidden_states_batch``,
    ``signal_strengths_batch``, ``max_probs_batch``) share one vectorized
    kernel and one set of :class:`TraceStreams`, so a value computed
    token-by-token is bit-identical to the same position of a batch call.
    """

    def __init__(self, config: "HiddenConfig | None" = None, seed: int = 0):
        self.config = config or HiddenConfig()
        self.seed = seed
        cfg = self.config
        rng = spawn(seed, "hidden-weights")
        # Fixed per-model projections and per-layer uncertainty directions.
        self._W = rng.normal(
            0.0, 1.0 / np.sqrt(cfg.feature_dim), size=(cfg.n_layers, cfg.dim, cfg.feature_dim)
        )
        self._b = rng.normal(0.0, 0.1, size=(cfg.n_layers, cfg.dim))
        dirs = rng.normal(size=(cfg.n_layers, cfg.dim))
        self._dirs = dirs / np.linalg.norm(dirs, axis=1, keepdims=True)
        self._gains = np.asarray(cfg.layer_gains, dtype=float)
        # Signal is always applied as strength * (gain * direction); the
        # scalar and batch paths must associate identically for bit
        # equality, so the (n_layers, dim) product is fixed here.
        self._signal_dirs = self._gains[:, None] * self._dirs
        self._embed_cache: dict[tuple[str, str], np.ndarray] = {}
        self.embed_cache_cap = EMBED_CACHE_CAP
        self._embed_hits = 0
        self._embed_misses = 0

    def trace_streams(self, instance_id: str) -> TraceStreams:
        """Fresh named streams for one trace (pure in seed + instance)."""
        return TraceStreams(self.seed, instance_id, self.config)

    # -- embeddings ----------------------------------------------------------

    @property
    def embed_cache_stats(self) -> dict:
        """Hit/miss/size counters of the bounded embedding cache."""
        return {
            "hits": self._embed_hits,
            "misses": self._embed_misses,
            "size": len(self._embed_cache),
            "cap": self.embed_cache_cap,
        }

    def _embed(self, kind: str, text: str, dim: int) -> np.ndarray:
        key = (kind, text)
        cached = self._embed_cache.get(key)
        if cached is None:
            self._embed_misses += 1
            rng = spawn(self.seed, "embed", kind, text)
            cached = rng.normal(0.0, 1.0, size=dim)
            # FIFO bound: a sweep touches unboundedly many distinct
            # instance ids; embeddings are recomputable pure functions,
            # so dropping the oldest entry is always safe.
            while len(self._embed_cache) >= self.embed_cache_cap:
                self._embed_cache.pop(next(iter(self._embed_cache)))
            self._embed_cache[key] = cached
        else:
            self._embed_hits += 1
        return cached

    def _embed_rows(self, kind: str, texts, dim: int) -> np.ndarray:
        """Gather cached embeddings into an ``(n, dim)`` matrix."""
        out = np.empty((len(texts), dim))
        local: dict[str, np.ndarray] = {}
        for i, text in enumerate(texts):
            row = local.get(text)
            if row is None:
                row = local[text] = self._embed(kind, text, dim)
            out[i] = row
        return out

    def features_batch(
        self,
        instance_id: str,
        tokens,
        prev_tokens,
        item_indexes,
        within_indexes,
        positions=None,
    ) -> np.ndarray:
        """The ``(n, feature_dim)`` feature matrix for ``n`` tokens.

        ``positions`` defaults to ``0..n-1`` (a whole trace); the scalar
        per-token path passes a single explicit position.
        """
        cfg = self.config
        n = len(tokens)
        if positions is None:
            positions = np.arange(n, dtype=float)
        else:
            positions = np.asarray(positions, dtype=float)
        phi = np.empty((n, cfg.feature_dim))
        offset = 0
        phi[:, offset : offset + cfg.token_embed_dim] = self._embed_rows(
            "tok", tokens, cfg.token_embed_dim
        )
        offset += cfg.token_embed_dim
        phi[:, offset : offset + cfg.prev_embed_dim] = self._embed_rows(
            "prev", prev_tokens, cfg.prev_embed_dim
        )
        offset += cfg.prev_embed_dim
        phi[:, offset : offset + cfg.instance_embed_dim] = self._embed(
            "inst", instance_id, cfg.instance_embed_dim
        )
        offset += cfg.instance_embed_dim
        phi[:, offset] = np.sin(positions / 3.0)
        phi[:, offset + 1] = np.cos(positions / 3.0)
        phi[:, offset + 2] = np.sin(positions / 11.0)
        phi[:, offset + 3] = np.cos(positions / 11.0)
        phi[:, offset + 4] = np.asarray(item_indexes, dtype=float) / 5.0
        phi[:, offset + 5] = np.asarray(within_indexes, dtype=float) / 5.0
        return phi

    # -- the shared vectorized kernels ----------------------------------------

    @staticmethod
    def _positions(positions, n: int) -> np.ndarray:
        if positions is None:
            return np.arange(n)
        return np.asarray(positions, dtype=int)

    # -- public batch API ------------------------------------------------------

    def signal_strengths_batch(
        self,
        instance_id: str,
        is_branching,
        decision_points=None,
        item_indexes=None,
        nervousness: float = 0.0,
        positions=None,
        streams: "TraceStreams | None" = None,
    ) -> np.ndarray:
        """Uncertainty-signal magnitudes for ``n`` tokens (0 when absent)."""
        cfg = self.config
        is_branching = np.asarray(is_branching, dtype=bool)
        n = len(is_branching)
        if n == 0:
            return np.zeros(0)
        if decision_points is None:
            decision_points = np.ones(n, dtype=bool)
        else:
            decision_points = np.asarray(decision_points, dtype=bool)
        if item_indexes is None:
            item_indexes = np.zeros(n, dtype=int)
        positions = self._positions(positions, n)
        if streams is None:
            streams = self.trace_streams(instance_id)
        span = int(positions.max()) + 1
        u = streams.signal_u(span)[positions]
        rate = (
            cfg.spurious_rate
            * (
                cfg.spurious_nervousness_floor
                + cfg.spurious_nervousness_gain * nervousness
            )
            * cfg.spurious_item_decay ** np.asarray(item_indexes, dtype=float)
        )
        fired = decision_points & ~is_branching & (u[:, 0] < rate)
        if not (is_branching.any() or fired.any()):
            # A quiet trace never reads the magnitude stream at all.
            return np.zeros(n)
        z = streams.signal_z(span)[positions]
        real = cfg.signal_base * np.exp(cfg.signal_sigma * z)
        branch = np.where(
            u[:, 0] < cfg.faint_signal_rate, real * cfg.faint_signal_scale, real
        )
        weak = cfg.signal_base * cfg.spurious_weak_scale * np.exp(0.4 * z)
        spurious = np.where(u[:, 1] < cfg.spurious_real_fraction, real, weak)
        return np.where(is_branching, branch, np.where(fired, spurious, 0.0))

    def hidden_states_batch(
        self,
        instance_id: str,
        tokens,
        prev_tokens,
        item_indexes,
        within_indexes,
        is_branching,
        decision_points=None,
        nervousness: float = 0.0,
        positions=None,
        streams: "TraceStreams | None" = None,
    ) -> np.ndarray:
        """The ``(n, n_layers, dim)`` hidden tensor for a whole trace.

        One feature gather, one ``(n,f)×(l,d,f)`` einsum + tanh, one
        signal kernel and one noise-stream slice cover every token —
        this is the vectorized observable phase of trace synthesis.
        """
        cfg = self.config
        n = len(tokens)
        positions = self._positions(positions, n)
        if streams is None:
            streams = self.trace_streams(instance_id)
        phi = self.features_batch(
            instance_id,
            tokens,
            prev_tokens,
            item_indexes,
            within_indexes,
            positions=positions,
        )
        # optimize=False keeps einsum's fixed element-sequential summation
        # so each output row is independent of the batch size (the scalar
        # session computes the same rows one at a time).
        base = np.tanh(np.einsum("nf,ldf->nld", phi, self._W) + self._b)
        strengths = self.signal_strengths_batch(
            instance_id,
            is_branching,
            decision_points,
            item_indexes,
            nervousness,
            positions=positions,
            streams=streams,
        )
        span = int(positions.max()) + 1 if n else 0
        noise = streams.noise(span)[positions]
        if strengths.any():
            base = base + strengths[:, None, None] * self._signal_dirs
        return base + cfg.noise_scale * noise

    def max_probs_batch(
        self,
        instance_id: str,
        is_branching,
        positions=None,
        streams: "TraceStreams | None" = None,
    ) -> np.ndarray:
        """Over-confident max softmax probabilities for ``n`` tokens."""
        cfg = self.config
        is_branching = np.asarray(is_branching, dtype=bool)
        n = len(is_branching)
        if n == 0:
            return np.zeros(0)
        positions = self._positions(positions, n)
        if streams is None:
            streams = self.trace_streams(instance_id)
        span = int(positions.max()) + 1
        _, _, scale_c = cfg.prob_correct_beta
        _, _, scale_b = cfg.prob_branch_beta
        # Each class reads only its own stream (most traces are clean
        # and never touch the branching one); values are identical to
        # slicing both streams and selecting by label.
        out = np.empty(n)
        correct = ~is_branching
        if correct.any():
            out[correct] = 1.0 - scale_c * streams.prob_correct(span)[positions[correct]]
        if is_branching.any():
            out[is_branching] = (
                1.0 - scale_b * streams.prob_branch(span)[positions[is_branching]]
            )
        return out

    # -- per-token API (the scalar session's view of the same streams) --------

    def signal_strength(
        self,
        instance_id: str,
        position: int,
        is_branching: bool,
        decision_point: bool = True,
        nervousness: float = 0.0,
        item_index: int = 0,
        streams: "TraceStreams | None" = None,
    ) -> float:
        """The uncertainty-signal magnitude for one token (0 when absent)."""
        out = self.signal_strengths_batch(
            instance_id,
            [is_branching],
            [decision_point],
            [item_index],
            nervousness,
            positions=[position],
            streams=streams,
        )
        return float(out[0])

    def hidden_states(
        self,
        instance_id: str,
        position: int,
        token: str,
        prev_token: str,
        item_index: int,
        within_index: int,
        is_branching: bool,
        decision_point: bool = True,
        nervousness: float = 0.0,
        streams: "TraceStreams | None" = None,
    ) -> np.ndarray:
        """The ``(n_layers, dim)`` hidden stack for one generated token."""
        out = self.hidden_states_batch(
            instance_id,
            [token],
            [prev_token],
            [item_index],
            [within_index],
            [is_branching],
            [decision_point],
            nervousness,
            positions=[position],
            streams=streams,
        )
        return out[0]

    def max_prob(
        self,
        instance_id: str,
        position: int,
        is_branching: bool,
        streams: "TraceStreams | None" = None,
    ) -> float:
        """Over-confident next-token max softmax probability (Figure 3a)."""
        out = self.max_probs_batch(
            instance_id, [is_branching], positions=[position], streams=streams
        )
        return float(out[0])
