"""Per-layer hidden-state synthesis.

The simulator emits an ``(n_layers, dim)`` hidden-state stack per
generated token, constructed so that:

* a fixed per-layer random projection of token/context features gives
  each layer realistic, token-dependent structure (probes must separate
  signal from this variation — they genuinely *learn*);
* at branching tokens an *uncertainty direction* is added, with strength
  drawn per event (some branching points are faint) and a per-layer gain
  profile peaking in mid-late layers, as the probing literature the paper
  cites reports for real LLMs;
* a small rate of non-branching tokens receives a weak spurious signal,
  so the probes' false-positive behaviour (and hence EAR) is non-trivial;
* the next-token softmax max-probability is over-confident for correct
  AND wrong tokens (Figure 3a), which is what defeats logit-based
  uncertainty baselines and motivates hidden-state probing.

Everything is a pure function of (model seed, instance id, position),
so traces are bit-reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import spawn

__all__ = ["HiddenConfig", "HiddenStateSynthesizer"]


@dataclass(frozen=True)
class HiddenConfig:
    """Architecture and signal parameters of the simulated model."""

    n_layers: int = 12
    dim: int = 32
    token_embed_dim: int = 12
    prev_embed_dim: int = 6
    instance_embed_dim: int = 6
    noise_scale: float = 0.45
    signal_base: float = 2.4
    # Per-layer gain profile (length n_layers); mid-late peak.
    layer_gains: tuple[float, ...] = (
        0.05, 0.10, 0.22, 0.38, 0.60, 0.85, 1.00, 1.08, 1.02, 0.85, 0.62, 0.40,
    )
    # Branching-signal strength is lognormal with a heavy lower tail
    # (sigma below): some branching points are intrinsically faint. A
    # small extra mixture of near-invisible ones models the genuinely
    # undetectable errors. Keeping the tail *continuous* matters: a
    # bimodal strength distribution makes the conformal class-1 quantile
    # collapse to "include everything" right at alpha = 0.1.
    signal_sigma: float = 0.40
    faint_signal_rate: float = 0.03  # branching tokens that are hard to detect
    faint_signal_scale: float = 0.35
    # Spurious (false) uncertainty fires only at *decision points* — item
    # starts and the continue/stop choices at SEP/EOS — where a real
    # model's next-token entropy concentrates; mid-item tokens are
    # trie-constrained continuations. The rate scales with the instance's
    # error propensity (the model is nervous on hard instances even when
    # it gets them right) and decays geometrically with the item index
    # (uncertainty is front-loaded: once the first items are settled the
    # continuation is increasingly determined), keeping the per-generation
    # false-flag mass roughly constant across output lengths.
    # Of the spurious signals, ``spurious_real_fraction`` are drawn from
    # the *same* strength distribution as true branching signals (false
    # uncertainty feels exactly like true uncertainty to a probe); the
    # remainder are weak. This makes the false-flag rate self-calibrating
    # — those lookalikes cross the conformal threshold whenever real
    # signals do — so instance-level FAR is stable across tasks and
    # benchmarks instead of hinging on where the class-1 quantile lands.
    spurious_rate: float = 0.07
    spurious_real_fraction: float = 0.5
    spurious_weak_scale: float = 0.25
    spurious_nervousness_floor: float = 0.4
    spurious_nervousness_gain: float = 2.8
    spurious_item_decay: float = 0.5
    # Overconfident softmax (Figure 3a): Beta deficit parameters. The two
    # distributions overlap almost completely — a fine-tuned linker is
    # confident regardless of correctness — which is precisely what makes
    # probability thresholding useless as a branching detector (§3.1).
    prob_correct_beta: tuple[float, float, float] = (1.0, 16.0, 0.08)
    prob_branch_beta: tuple[float, float, float] = (1.0, 12.0, 0.10)

    def __post_init__(self) -> None:
        if len(self.layer_gains) != self.n_layers:
            raise ValueError(
                f"layer_gains has {len(self.layer_gains)} entries for "
                f"{self.n_layers} layers"
            )

    @property
    def feature_dim(self) -> int:
        # token + prev + instance embeds, 4 positional, item idx, within idx.
        return (
            self.token_embed_dim
            + self.prev_embed_dim
            + self.instance_embed_dim
            + 4
            + 2
        )


class HiddenStateSynthesizer:
    """Deterministic hidden-state and softmax-probability generator."""

    def __init__(self, config: "HiddenConfig | None" = None, seed: int = 0):
        self.config = config or HiddenConfig()
        self.seed = seed
        cfg = self.config
        rng = spawn(seed, "hidden-weights")
        # Fixed per-model projections and per-layer uncertainty directions.
        self._W = rng.normal(
            0.0, 1.0 / math.sqrt(cfg.feature_dim), size=(cfg.n_layers, cfg.dim, cfg.feature_dim)
        )
        self._b = rng.normal(0.0, 0.1, size=(cfg.n_layers, cfg.dim))
        dirs = rng.normal(size=(cfg.n_layers, cfg.dim))
        self._dirs = dirs / np.linalg.norm(dirs, axis=1, keepdims=True)
        self._gains = np.asarray(cfg.layer_gains, dtype=float)
        self._embed_cache: dict[tuple[str, str], np.ndarray] = {}

    # -- embeddings ----------------------------------------------------------

    def _embed(self, kind: str, text: str, dim: int) -> np.ndarray:
        key = (kind, text)
        cached = self._embed_cache.get(key)
        if cached is None:
            rng = spawn(self.seed, "embed", kind, text)
            cached = rng.normal(0.0, 1.0, size=dim)
            self._embed_cache[key] = cached
        return cached

    def _features(
        self,
        instance_id: str,
        position: int,
        token: str,
        prev_token: str,
        item_index: int,
        within_index: int,
    ) -> np.ndarray:
        cfg = self.config
        pos = float(position)
        parts = [
            self._embed("tok", token, cfg.token_embed_dim),
            self._embed("prev", prev_token, cfg.prev_embed_dim),
            self._embed("inst", instance_id, cfg.instance_embed_dim),
            np.array(
                [
                    math.sin(pos / 3.0),
                    math.cos(pos / 3.0),
                    math.sin(pos / 11.0),
                    math.cos(pos / 11.0),
                ]
            ),
            np.array([item_index / 5.0, within_index / 5.0]),
        ]
        return np.concatenate(parts)

    # -- public API ------------------------------------------------------------

    def signal_strength(
        self,
        instance_id: str,
        position: int,
        is_branching: bool,
        decision_point: bool = True,
        nervousness: float = 0.0,
        item_index: int = 0,
    ) -> float:
        """The uncertainty-signal magnitude for one token (0 when absent)."""
        cfg = self.config
        rng = spawn(self.seed, "signal", instance_id, position)
        if is_branching:
            strength = cfg.signal_base * float(rng.lognormal(0.0, cfg.signal_sigma))
            if rng.random() < cfg.faint_signal_rate:
                strength *= cfg.faint_signal_scale
            return strength
        rate = (
            cfg.spurious_rate
            * (
                cfg.spurious_nervousness_floor
                + cfg.spurious_nervousness_gain * nervousness
            )
            * cfg.spurious_item_decay**item_index
        )
        if decision_point and rng.random() < rate:
            if rng.random() < cfg.spurious_real_fraction:
                # A lookalike: indistinguishable from a true branching signal.
                return cfg.signal_base * float(rng.lognormal(0.0, cfg.signal_sigma))
            return (
                cfg.signal_base
                * cfg.spurious_weak_scale
                * float(rng.lognormal(0.0, 0.4))
            )
        return 0.0

    def hidden_states(
        self,
        instance_id: str,
        position: int,
        token: str,
        prev_token: str,
        item_index: int,
        within_index: int,
        is_branching: bool,
        decision_point: bool = True,
        nervousness: float = 0.0,
    ) -> np.ndarray:
        """The ``(n_layers, dim)`` hidden stack for one generated token."""
        cfg = self.config
        phi = self._features(
            instance_id, position, token, prev_token, item_index, within_index
        )
        base = np.tanh(np.einsum("ldf,f->ld", self._W, phi) + self._b)
        strength = self.signal_strength(
            instance_id,
            position,
            is_branching,
            decision_point,
            nervousness,
            item_index=item_index,
        )
        if strength > 0.0:
            base = base + (self._gains * strength)[:, None] * self._dirs
        noise_rng = spawn(self.seed, "noise", instance_id, position)
        return base + cfg.noise_scale * noise_rng.normal(
            size=(cfg.n_layers, cfg.dim)
        )

    def max_prob(self, instance_id: str, position: int, is_branching: bool) -> float:
        """Over-confident next-token max softmax probability (Figure 3a)."""
        cfg = self.config
        a, b, scale = (
            cfg.prob_branch_beta if is_branching else cfg.prob_correct_beta
        )
        rng = spawn(self.seed, "prob", instance_id, position)
        return float(1.0 - scale * rng.beta(a, b))
