"""The simulated linker's error process.

A fine-tuned schema linker errs more on ambiguous questions, opaque
(dirty, undescribed) identifiers, knowledge-dependent phrasing and larger
schemas (paper §1, Figure 1). This module turns those *measured* instance
features into an error propensity, and plans concrete error events
(substitute / omit / insert a schema item) whose token streams diverge
from gold exactly where the paper's branching points live.

There are no per-benchmark constants here: BIRD is harder than Spider
only because its instances measure worse on these features.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.corpus.dataset import InstanceFeatures
from repro.linking.instance import (
    COLUMN_TASK,
    SchemaLinkingInstance,
    parse_column_item,
)
from repro.utils.rng import spawn
from repro.utils.text import split_identifier

__all__ = ["ErrorEvent", "ErrorModelConfig", "error_propensity", "plan_errors"]

SUBSTITUTE = "substitute"
OMIT = "omit"
INSERT = "insert"


@dataclass(frozen=True)
class ErrorEvent:
    """One planned divergence.

    ``slot`` indexes the gold item list; ``slot == len(gold_items)``
    denotes the end-of-sequence position (where only INSERT applies).
    """

    slot: int
    kind: str
    payload: "str | None" = None

    def __post_init__(self) -> None:
        if self.kind not in (SUBSTITUTE, OMIT, INSERT):
            raise ValueError(f"unknown error kind {self.kind!r}")
        if self.kind in (SUBSTITUTE, INSERT) and not self.payload:
            raise ValueError(f"{self.kind} events need a payload item")


@dataclass(frozen=True)
class ErrorModelConfig:
    """Coefficients of the error propensity and event distribution.

    Calibrated (see ``experiments/calibrate.py``) so the *emergent*
    linking accuracy lands near the paper's Table 2 on the default
    corpora; the coefficients themselves are benchmark-agnostic.
    """

    base_logit: float = -3.78
    w_table_ambiguity: float = 0.9
    w_column_ambiguity: float = 0.9
    w_dirty_gap: float = 2.6
    w_knowledge: float = 1.1
    w_schema_size: float = 0.05  # per table beyond six
    w_gold_size: float = 0.22  # per gold item beyond one
    difficulty_shift: tuple[float, ...] = (0.0, 0.45, 0.85)  # simple/moderate/challenging
    column_task_shift: float = 0.50
    # Distribution of the number of branching events in an erroneous
    # generation (Figure 3b: >90% have one or two).
    n_events_probs: tuple[float, ...] = (0.70, 0.22, 0.08)
    kind_probs: tuple[float, ...] = (0.35, 0.15, 0.50)  # substitute/omit/insert
    max_propensity: float = 0.75


_DIFFICULTY_INDEX = {"simple": 0, "moderate": 1, "challenging": 2}


def error_propensity(
    features: InstanceFeatures,
    task: str,
    difficulty: str,
    config: "ErrorModelConfig | None" = None,
) -> float:
    """P(the generation for this instance contains at least one error)."""
    cfg = config or ErrorModelConfig()
    logit = (
        cfg.base_logit
        + cfg.w_table_ambiguity * features.table_ambiguity
        + cfg.w_column_ambiguity * features.column_ambiguity
        + cfg.w_dirty_gap * features.dirty_gap
        + cfg.w_knowledge * float(features.needs_knowledge)
        + cfg.w_schema_size * max(0, features.n_tables - 6)
        + cfg.w_gold_size * max(0, features.n_gold_tables - 1)
        + cfg.difficulty_shift[_DIFFICULTY_INDEX[difficulty]]
    )
    if task == COLUMN_TASK:
        logit += cfg.column_task_shift
    p = 1.0 / (1.0 + math.exp(-logit))
    return min(p, cfg.max_propensity)


# -- distractor selection ----------------------------------------------------


def _item_words(instance: SchemaLinkingInstance, item: str) -> set[str]:
    """Semantic + surface words of an item, for similarity scoring."""
    words: set[str] = set(split_identifier(item))
    db = instance.db
    try:
        if instance.task == COLUMN_TASK:
            table, column = parse_column_item(item)
            words |= set(db.table(table).semantic_words)
            words |= set(db.table(table).column(column).semantic_words)
        else:
            words |= set(db.table(item).semantic_words)
    except KeyError:
        pass
    return words


def _similarity(instance: SchemaLinkingInstance, a: str, b: str) -> float:
    """Confusability of items ``a`` and ``b`` (shared words, shared table)."""
    wa, wb = _item_words(instance, a), _item_words(instance, b)
    if not wa or not wb:
        return 0.0
    jaccard = len(wa & wb) / len(wa | wb)
    bonus = 0.0
    if instance.task == COLUMN_TASK:
        ta, _ = parse_column_item(a)
        tb, _ = parse_column_item(b)
        if ta.lower() == tb.lower():
            bonus = 0.35  # wrong column of the right table: the classic miss
    return jaccard + bonus


def _pick_distractor(
    instance: SchemaLinkingInstance,
    anchor: str,
    taken: set[str],
    rng: np.random.Generator,
) -> "str | None":
    """A non-gold candidate the model would plausibly confuse with ``anchor``.

    Scores candidates by confusability and samples from the top scorers —
    deterministic-ish but not always the single most similar item.
    """
    gold = set(instance.gold_items)
    pool = [c for c in instance.candidates if c not in gold and c not in taken]
    if not pool:
        return None
    scored = sorted(
        pool,
        key=lambda c: (-_similarity(instance, anchor, c), c),
    )
    top = scored[: max(1, min(3, len(scored)))]
    return top[int(rng.integers(0, len(top)))]


# -- event planning ----------------------------------------------------------


def plan_errors(
    instance: SchemaLinkingInstance,
    model_seed: int,
    config: "ErrorModelConfig | None" = None,
) -> list[ErrorEvent]:
    """Plan the error events for one generation (deterministic per seed).

    The *occurrence* draw uses a latent hardness shared across the
    table/column tasks of the same example (seeded by the example id), so
    instances too hard for table linking are usually too hard for column
    linking as well — the overlap the paper observes in §4.3 ("if the
    table linking operation abstains, the column linking operation is
    likely to do the same").
    """
    cfg = config or ErrorModelConfig()
    if not instance.gold_items:
        # Degenerate instance (e.g. column linking restricted to wrongly
        # predicted tables): the model has nothing to emit but EOS.
        return []
    example_key = instance.instance_id.rsplit("/", 1)[0]
    hardness_rng = spawn(model_seed, "hardness", example_key)
    hardness = float(hardness_rng.random())
    p = error_propensity(instance.features, instance.task, instance.difficulty, cfg)
    if hardness >= p:
        return []

    rng = spawn(model_seed, "events", instance.instance_id)
    n_gold = len(instance.gold_items)
    probs = np.asarray(cfg.n_events_probs, dtype=float)
    n_events = 1 + int(rng.choice(len(probs), p=probs / probs.sum()))
    # Slots 0..n_gold-1 are item slots; slot n_gold is the EOS position.
    slots = list(rng.permutation(n_gold + 1))[:n_events]

    events: list[ErrorEvent] = []
    taken: set[str] = set()
    planned_omits = 0
    kind_probs = np.asarray(cfg.kind_probs, dtype=float)
    kind_probs = kind_probs / kind_probs.sum()
    for slot in sorted(int(s) for s in slots):
        if slot == n_gold:
            anchor = instance.gold_items[-1] if instance.gold_items else ""
            payload = _pick_distractor(instance, anchor, taken, rng)
            if payload is None:
                continue
            taken.add(payload)
            events.append(ErrorEvent(slot=slot, kind=INSERT, payload=payload))
            continue
        kind = (SUBSTITUTE, OMIT, INSERT)[int(rng.choice(3, p=kind_probs))]
        if kind == OMIT and planned_omits + 1 >= n_gold:
            kind = SUBSTITUTE  # never plan an empty generation
        if kind == OMIT:
            planned_omits += 1
            events.append(ErrorEvent(slot=slot, kind=OMIT))
            continue
        payload = _pick_distractor(instance, instance.gold_items[slot], taken, rng)
        if payload is None:
            if n_gold > 1 and planned_omits + 1 < n_gold:
                planned_omits += 1
                events.append(ErrorEvent(slot=slot, kind=OMIT))
            continue
        taken.add(payload)
        events.append(ErrorEvent(slot=slot, kind=kind, payload=payload))
    return events
