"""Constrained-decoding trie over candidate item token sequences.

The schema-linking model may only emit tokens that extend some valid item
name (paper §2.3: "We constrain the model's token level generation to
only generate tokens in T^t utilizing constraint generation").
"""

from __future__ import annotations

from repro.llm.tokenizer import tokenize_identifier

__all__ = ["ItemTrie"]


class _Node:
    __slots__ = ("children", "item")

    def __init__(self) -> None:
        self.children: dict[str, _Node] = {}
        self.item: "str | None" = None  # set when a full item ends here


class ItemTrie:
    """Token-level trie over a fixed set of item names."""

    def __init__(self, items: "list[str] | tuple[str, ...]"):
        if not items:
            raise ValueError("trie needs at least one item")
        self._root = _Node()
        self._items = tuple(items)
        for item in items:
            node = self._root
            for tok in tokenize_identifier(item):
                node = node.children.setdefault(tok, _Node())
            if node.item is not None and node.item != item:
                raise ValueError(
                    f"items {node.item!r} and {item!r} share a token sequence"
                )
            node.item = item

    @property
    def items(self) -> tuple[str, ...]:
        return self._items

    def _walk(self, prefix: "tuple[str, ...] | list[str]") -> "_Node | None":
        node = self._root
        for tok in prefix:
            node = node.children.get(tok)
            if node is None:
                return None
        return node

    def valid_prefix(self, prefix: "tuple[str, ...] | list[str]") -> bool:
        """Whether ``prefix`` extends to at least one item."""
        return self._walk(prefix) is not None

    def next_tokens(self, prefix: "tuple[str, ...] | list[str]") -> tuple[str, ...]:
        """Allowed continuation tokens for an in-progress item."""
        node = self._walk(prefix)
        if node is None:
            return ()
        return tuple(node.children)

    def completed_item(self, prefix: "tuple[str, ...] | list[str]") -> "str | None":
        """The full item ``prefix`` spells, if it spells one exactly."""
        node = self._walk(prefix)
        return None if node is None else node.item

    def completions(self, prefix: "tuple[str, ...] | list[str]") -> tuple[str, ...]:
        """All items reachable from ``prefix``."""
        node = self._walk(prefix)
        if node is None:
            return ()
        out: list[str] = []

        def collect(n: _Node) -> None:
            if n.item is not None:
                out.append(n.item)
            for child in n.children.values():
                collect(child)

        collect(node)
        return tuple(out)
