"""Checker: the IPC op vocabulary matches in both directions.

``remote.py`` frames pickled dicts tagged with an ``"op"`` key over a
pipe or socket. The supervisor and the worker each *send* a set of ops
and *handle* a set of ops, and the protocol is only sound when the two
sides agree exhaustively: every op one side sends, the other side
matches by tag somewhere, and neither side matches ops that nobody
sends (dead protocol arms rot silently).

This checker rediscovers those four sets from the AST of each module:

* a **send** is a dict literal containing ``"op": "<const>"`` — this
  catches both ``transport.send({"op": "ping"})`` and the build-then-
  send idiom (``ready = {"op": "ready", ...}; transport.send(ready)``);
* a **handle** is a comparison of an op expression (a bare ``op`` name,
  ``msg.get("op")`` or ``msg["op"]``) against a string constant or a
  tuple/list/set of them, with ``==``, ``!=``, ``in`` or ``not in``.

Side attribution is lexical: code inside a class whose name contains a
supervisor marker (``Backend``, ``Supervisor``) is the supervisor side;
everything else — module functions like ``worker_main`` — is the worker
side. The checker stays silent unless the file has traffic on both
sides, so ordinary modules that happen to build ``{"op": ...}`` dicts
are not dragged in.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, LintConfig, SourceFile, build_parents

RULE = "ipc-protocol"


def _enclosing_class(node: ast.AST, parents: "dict[ast.AST, ast.AST]") -> "str | None":
    current = parents.get(node)
    while current is not None:
        if isinstance(current, ast.ClassDef):
            return current.name
        current = parents.get(current)
    return None


def _side(node: ast.AST, parents: "dict[ast.AST, ast.AST]", markers: "tuple[str, ...]") -> str:
    cls = _enclosing_class(node, parents)
    if cls is not None and any(marker in cls for marker in markers):
        return "supervisor"
    return "worker"


def _is_op_expr(node: ast.AST) -> bool:
    """Does ``node`` read an op tag? ``op`` / ``msg.get("op")`` / ``msg["op"]``."""
    if isinstance(node, ast.Name) and node.id == "op":
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and node.args
        and isinstance(node.args[0], ast.Constant)
        and node.args[0].value == "op"
    ):
        return True
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.slice, ast.Constant)
        and node.slice.value == "op"
    ):
        return True
    return False


def _const_strings(node: ast.AST) -> "list[tuple[str, int, int]]":
    """String constants inside ``node`` (a literal or literal container)."""
    out: "list[tuple[str, int, int]]" = []
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        out.append((node.value, node.lineno, node.col_offset))
    elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                out.append((element.value, element.lineno, element.col_offset))
    return out


def _collect(source: SourceFile, markers: "tuple[str, ...]"):
    """(sent, handled) per side; each maps op -> first (line, col)."""
    parents = build_parents(source.tree)
    sent = {"supervisor": {}, "worker": {}}
    handled = {"supervisor": {}, "worker": {}}
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == "op"
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    side = _side(node, parents, markers)
                    sent[side].setdefault(value.value, (node.lineno, node.col_offset))
        elif isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            if not any(_is_op_expr(operand) for operand in operands):
                continue
            if not all(
                isinstance(op, (ast.Eq, ast.NotEq, ast.In, ast.NotIn)) for op in node.ops
            ):
                continue
            side = _side(node, parents, markers)
            for operand in operands:
                for value, line, col in _const_strings(operand):
                    handled[side].setdefault(value, (line, col))
    return sent, handled


def check(source: SourceFile, config: LintConfig) -> "Iterable[Finding]":
    sent, handled = _collect(source, config.ipc_supervisor_markers)
    # Only a real IPC module has both sides talking; otherwise any dict
    # with an "op" key in an unrelated file would trigger the rule.
    if not (sent["supervisor"] or handled["supervisor"]) or not (
        sent["worker"] or handled["worker"]
    ):
        return []
    findings: "list[Finding]" = []

    def mismatches(sender: str, receiver: str) -> None:
        for op, (line, col) in sorted(sent[sender].items()):
            if op not in handled[receiver]:
                findings.append(
                    Finding(
                        rule=RULE,
                        path=source.display,
                        line=line,
                        col=col,
                        message=(
                            f"op '{op}' is sent by the {sender} but never matched "
                            f"by tag on the {receiver} side"
                        ),
                        symbol=f"{sender}:{op}",
                    )
                )
        for op, (line, col) in sorted(handled[receiver].items()):
            if op not in sent[sender]:
                findings.append(
                    Finding(
                        rule=RULE,
                        path=source.display,
                        line=line,
                        col=col,
                        message=(
                            f"op '{op}' is matched on the {receiver} side but the "
                            f"{sender} never sends it (dead protocol arm?)"
                        ),
                        symbol=f"{receiver}:{op}",
                    )
                )

    mismatches("supervisor", "worker")
    mismatches("worker", "supervisor")
    return findings
