"""Checker: resource-owning objects are context-managed or handed off.

``GenerationService``, ``ProcessBackend``, ``AsyncBatchedBackend``,
``ExperimentContext`` and ``SweepRunner`` own worker processes, file
handles and threads; dropping one on the floor leaks them. A
construction (``Cls(...)`` or a classmethod factory like
``ExperimentContext.default()`` / ``GenerationService.build()``) is
accepted when it visibly escapes into someone else's ownership:

* it is the context expression of a ``with`` statement;
* it is returned or yielded (the caller owns it now);
* it is stored into an attribute or subscript (the container owns it);
* it is passed as an argument to another call (the callee owns it);
* it is bound to a local name that is later ``with``-ed, ``.close()``d
  inside a ``finally``, returned/yielded, stored, or passed on.

Everything else — most notably a bare ``Cls(...)`` expression statement
or a local that simply goes out of scope — is flagged. The name-flow
analysis is per-function and syntactic (no dataflow across branches),
which is exactly as clever as a reviewer scanning the function.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, LintConfig, SourceFile, build_parents

RULE = "lifecycle"


def _construction_name(node: ast.Call, classes: "tuple[str, ...]") -> "str | None":
    """The lifecycle class constructed by ``node``, if any."""
    func = node.func
    if isinstance(func, ast.Name) and func.id in classes:
        return func.id
    if isinstance(func, ast.Attribute):
        # Classmethod factories: ExperimentContext.default(), GenerationService.build()
        if isinstance(func.value, ast.Name) and func.value.id in classes:
            return func.value.id
    return None


def _enclosing_function(node: ast.AST, parents: "dict[ast.AST, ast.AST]") -> "ast.AST | None":
    current = parents.get(node)
    while current is not None and not isinstance(
        current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
    ):
        current = parents.get(current)
    return current


def _escapes_in_place(node: ast.Call, parents: "dict[ast.AST, ast.AST]") -> "str | None":
    """Ownership transferred right at the construction site?

    Returns the bound local name when the construction is assigned to a
    simple name (deciding the question needs the later uses), ``""``
    when it escapes in place, or ``None`` when it does not escape.
    """
    current: ast.AST = node
    parent = parents.get(current)
    while parent is not None:
        if isinstance(parent, ast.withitem) and parent.context_expr is current:
            return ""
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom, ast.Await)):
            return ""
        if isinstance(parent, ast.Call) and current is not parent.func:
            return ""  # passed to another callable: ownership handed off
        if isinstance(parent, (ast.Assign, ast.AnnAssign, ast.AugAssign, ast.NamedExpr)):
            targets = (
                parent.targets if isinstance(parent, ast.Assign) else [parent.target]
            )
            names: "list[str]" = []
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    return ""  # stored into an owner
                if isinstance(target, ast.Name):
                    names.append(target.id)
                if isinstance(target, (ast.Tuple, ast.List)):
                    return ""  # destructuring: too opaque, assume handoff
            if names:
                return names[0]
            return None
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module, ast.Expr)):
            break
        # Conservatively keep ascending through wrappers (ternaries,
        # boolean ops, starred args) until a decisive parent appears.
        current, parent = parent, parents.get(parent)
    return None


def _local_escapes(name: str, scope: ast.AST, after_line: int) -> bool:
    """Does local ``name`` visibly escape later in ``scope``?"""
    for node in ast.walk(scope):
        lineno = getattr(node, "lineno", None)
        if lineno is None or lineno < after_line:
            continue
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Name) and expr.id == name:
                    return True
                # contextlib.closing(x), stack.enter_context(x), ...
                if isinstance(expr, ast.Call) and any(
                    isinstance(arg, ast.Name) and arg.id == name for arg in expr.args
                ):
                    return True
        if isinstance(node, ast.Return) and _returns_name(node.value, name):
            return True
        if isinstance(node, (ast.Yield, ast.YieldFrom)) and _returns_name(node.value, name):
            return True
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)) and _mentions(
                    node.value, name
                ):
                    return True
        if isinstance(node, ast.Call):
            if any(_is_name(arg, name) for arg in node.args) or any(
                _is_name(kw.value, name) for kw in node.keywords
            ):
                return True
        if isinstance(node, ast.Try) and node.finalbody:
            for cleanup in node.finalbody:
                for call in ast.walk(cleanup):
                    if (
                        isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Attribute)
                        and call.func.attr in ("close", "shutdown", "stop", "terminate")
                        and _is_name(call.func.value, name)
                    ):
                        return True
    return False


def _is_name(node: "ast.AST | None", name: str) -> bool:
    return isinstance(node, ast.Name) and node.id == name


def _returns_name(node: "ast.AST | None", name: str) -> bool:
    """``return ctx`` / ``return ctx, other`` — but not ``return ctx.seed``.

    Returning an attribute *of* the object keeps ownership here; only
    handing the object itself (possibly inside a tuple/list, or as a
    ``ctx or default`` fallback) transfers it to the caller.
    """
    if _is_name(node, name):
        return True
    if isinstance(node, (ast.Tuple, ast.List)):
        return any(_is_name(element, name) for element in node.elts)
    if isinstance(node, ast.BoolOp):
        return any(_is_name(value, name) for value in node.values)
    return False


def _mentions(node: "ast.AST | None", name: str) -> bool:
    if node is None:
        return False
    return any(_is_name(child, name) for child in ast.walk(node))


def check(source: SourceFile, config: LintConfig) -> "Iterable[Finding]":
    classes = config.lifecycle_classes
    if not classes:
        return []
    parents = build_parents(source.tree)
    findings: "list[Finding]" = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        cls_name = _construction_name(node, classes)
        if cls_name is None:
            continue
        escape = _escapes_in_place(node, parents)
        if escape == "":
            continue
        if escape is not None:
            scope = _enclosing_function(node, parents) or source.tree
            if _local_escapes(escape, scope, node.lineno):
                continue
        findings.append(
            Finding(
                rule=RULE,
                path=source.display,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"{cls_name} constructed without lifecycle management: use "
                    f"'with', close it in a try/finally, or hand it to an owner"
                ),
                symbol=cls_name,
            )
        )
    return findings
