"""Baseline files: adopt a known debt set without blessing new debt.

A baseline is a JSON file of finding fingerprints (see
:meth:`repro.analysis.core.Finding.fingerprint` — line-number-free, so
unrelated edits do not churn it). ``repro-lint --baseline FILE``
subtracts baselined findings from the report; ``--write-baseline``
snapshots the current findings into the file. The repository checks in
an **empty** baseline (``.repro-lint-baseline.json``) on purpose: every
pre-existing finding was either fixed or suppressed with a reason in
the PR that introduced this tool, and the gate keeps it that way.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.core import Finding

BASELINE_VERSION = 1


def load_baseline(path: "str | Path") -> "set[str]":
    """Fingerprints recorded in ``path`` (missing file = empty set)."""
    path = Path(path)
    if not path.exists():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: not a repro-lint baseline (expected version {BASELINE_VERSION})"
        )
    return {entry["fingerprint"] for entry in data.get("findings", [])}


def write_baseline(path: "str | Path", findings: "Sequence[Finding]") -> None:
    """Snapshot ``findings`` as the new accepted debt set."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": [finding.as_dict() for finding in findings],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def apply_baseline(
    findings: "Iterable[Finding]", fingerprints: "set[str]"
) -> "tuple[list[Finding], int]":
    """(surviving findings, count silenced by the baseline)."""
    kept: "list[Finding]" = []
    silenced = 0
    for finding in findings:
        if finding.fingerprint() in fingerprints:
            silenced += 1
        else:
            kept.append(finding)
    return kept, silenced
