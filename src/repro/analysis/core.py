"""The repro-lint core: findings, suppressions, configuration, driver.

This repository's reliability posture — backend byte-identity, kill-one
-worker recovery, zero-duplicate serving — rests on *conventions*: named
RNG streams only inside the deterministic zones, ``# caller holds
self._lock`` discipline in the supervisor, context-managed services, an
IPC op vocabulary kept in sync between supervisor and worker. This
package turns those conventions into machine-checked invariants: each
checker module encodes one of them over the stdlib :mod:`ast`, and this
module supplies everything they share.

Vocabulary
----------
finding
    One violation: ``(rule, path, line, col, message, symbol)``. The
    ``symbol`` (e.g. ``ProcessBackend._read_loop._pending``) anchors the
    baseline fingerprint so unrelated edits moving a line do not churn
    the baseline.
suppression
    ``# repro-lint: ignore[rule] reason`` on the flagged line, or alone
    on the line directly above it. The reason is mandatory: a reasonless
    suppression is itself reported (rule ``suppression``), so every
    silenced finding carries its justification in the diff.
zone
    A path scope a rule applies to. The determinism rule runs only in
    the deterministic zones (the generation kernel and the persistence/
    orchestration layers whose outputs are byte-compared in CI); the
    exception-hygiene rule runs across ``runtime/``.

Checkers are pure functions ``check(source, config) -> Iterable[Finding]``
registered in :data:`CHECKERS`; :func:`lint_paths` walks the files, runs
every enabled checker, applies suppressions, and returns the surviving
findings sorted by location. Adding a checker is one module and one
registry entry — see docs/static-analysis.md.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

__all__ = [
    "CHECKERS",
    "RULES",
    "Finding",
    "LintConfig",
    "SourceFile",
    "Suppression",
    "in_zone",
    "iter_python_files",
    "lint_paths",
]

# -- findings -----------------------------------------------------------------


@dataclass(frozen=True)
class Finding:
    """One invariant violation at one source location."""

    rule: str
    path: str  # posix-style, relative to the scan root
    line: int
    col: int
    message: str
    symbol: str = ""  # stable anchor (Class.method.attr) for baselines

    def fingerprint(self) -> str:
        """A line-number-free identity for baseline matching.

        Keyed on (rule, path, symbol, message) so a finding keeps its
        baseline entry while unrelated edits shift it up or down the
        file — and loses it the moment the violation itself changes.
        """
        digest = hashlib.blake2b(digest_size=12)
        for part in (self.rule, self.path, self.symbol, self.message):
            digest.update(part.encode("utf-8"))
            digest.update(b"\x1f")
        return digest.hexdigest()

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
            "fingerprint": self.fingerprint(),
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


# -- configuration ------------------------------------------------------------


@dataclass(frozen=True)
class LintConfig:
    """Which rules run where. The defaults encode *this* repository.

    Zones are path fragments matched against ``/``-joined relative
    paths at component boundaries (``"repro/llm/"`` matches
    ``src/repro/llm/hidden.py`` but not ``src/myrepro/llm/x.py``); an
    empty-string zone matches everything, which the fixture tests use.
    """

    rules: "tuple[str, ...]" = ()  # () = every registered rule
    #: Files whose outputs are byte-compared in CI: wall-clock reads,
    #: unseeded entropy and unsorted directory scans are violations here.
    deterministic_zones: "tuple[str, ...]" = (
        "repro/llm/",
        "repro/runtime/persist.py",
        "repro/runtime/service.py",
        "repro/runtime/sweep.py",
    )
    #: Where broad ``except Exception`` must re-raise, log, or count.
    exception_zones: "tuple[str, ...]" = ("repro/runtime/",)
    #: Resource-owning classes whose constructions must be context-
    #: managed, try/finally-closed, or handed off to an owner.
    lifecycle_classes: "tuple[str, ...]" = (
        "GenerationService",
        "ProcessBackend",
        "AsyncBatchedBackend",
        "ExperimentContext",
        "SweepRunner",
    )
    #: Class-name markers splitting an IPC module into its two roles.
    ipc_supervisor_markers: "tuple[str, ...]" = ("Backend", "Supervisor")

    def enabled(self, rule: str) -> bool:
        return not self.rules or rule in self.rules


def in_zone(display_path: str, zones: "Sequence[str]") -> bool:
    """Whether ``display_path`` falls inside any of ``zones``."""
    anchored = "/" + display_path.replace("\\", "/").lstrip("/")
    for zone in zones:
        if not zone:
            return True
        if "/" + zone.lstrip("/") in anchored:
            return True
    return False


# -- suppressions and annotations ---------------------------------------------

# ``# repro-lint: ignore[rule, rule2] because ...``
_SUPPRESS = re.compile(r"#\s*repro-lint:\s*ignore\[([^\]]+)\]\s*(.*?)\s*$")
# ``# caller holds self._lock`` — the formalized lock-discipline comment.
_CALLER_HOLDS = re.compile(r"#\s*caller holds ([A-Za-z_][\w.]*)")
# ``self.attr = ...  # guarded-by: self._lock`` — attribute annotation.
_GUARDED_BY = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][\w.]*)")


@dataclass(frozen=True)
class Suppression:
    """One parsed ``ignore[...]`` comment."""

    line: int
    rules: "tuple[str, ...]"
    reason: str
    standalone: bool  # the comment is the whole line (covers the next line)

    def covers(self, rule: str) -> bool:
        return rule in self.rules or "*" in self.rules


@dataclass
class SourceFile:
    """One parsed file plus the comment-level facts checkers need."""

    path: Path
    display: str
    text: str
    tree: ast.Module
    lines: "list[str]" = field(default_factory=list)
    suppressions: "dict[int, Suppression]" = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path, display: str) -> "SourceFile":
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        lines = text.splitlines()
        suppressions: "dict[int, Suppression]" = {}
        for number, line in enumerate(lines, start=1):
            match = _SUPPRESS.search(line)
            if match is None:
                continue
            rules = tuple(
                rule.strip() for rule in match.group(1).split(",") if rule.strip()
            )
            standalone = line.strip().startswith("#")
            suppressions[number] = Suppression(
                line=number,
                rules=rules,
                reason=match.group(2).strip(),
                standalone=standalone,
            )
        return cls(
            path=path,
            display=display,
            text=text,
            tree=tree,
            lines=lines,
            suppressions=suppressions,
        )

    # -- comment helpers used by the checkers --------------------------------

    def line_at(self, number: int) -> str:
        if 1 <= number <= len(self.lines):
            return self.lines[number - 1]
        return ""

    def caller_holds(self, node: ast.AST) -> "tuple[str, ...]":
        """Locks a ``# caller holds <lock>`` comment pins on a def.

        The comment may trail the ``def`` line (the repository's
        existing convention) or stand alone directly above the def /
        its decorators.
        """
        held: "list[str]" = []
        first = getattr(node, "lineno", 0)
        for decorator in getattr(node, "decorator_list", []):
            first = min(first, decorator.lineno)
        candidates = [self.line_at(first - 1), *self._def_lines(node)]
        for line in candidates:
            held.extend(_CALLER_HOLDS.findall(line))
        return tuple(dict.fromkeys(held))

    def _def_lines(self, node: ast.AST) -> "list[str]":
        """The physical lines of a def's signature (may span rows)."""
        start = getattr(node, "lineno", 1)
        body = getattr(node, "body", None)
        end = body[0].lineno - 1 if body else start
        return [self.line_at(number) for number in range(start, end + 1)]

    def guarded_by(self, lineno: int) -> "str | None":
        """The ``# guarded-by:`` annotation on one physical line."""
        match = _GUARDED_BY.search(self.line_at(lineno))
        return match.group(1) if match else None

    def suppressed(self, finding: Finding) -> "Suppression | None":
        """The suppression covering ``finding``, if any."""
        inline = self.suppressions.get(finding.line)
        if inline is not None and inline.covers(finding.rule):
            return inline
        above = self.suppressions.get(finding.line - 1)
        if above is not None and above.standalone and above.covers(finding.rule):
            return above
        return None


# -- shared AST helpers --------------------------------------------------------


def dotted_name(node: ast.AST) -> "tuple[str, ...] | None":
    """``a.b.c`` as ``("a", "b", "c")``, or None for non-name chains."""
    parts: "list[str]" = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def build_parents(tree: ast.Module) -> "dict[ast.AST, ast.AST]":
    """child -> parent for every node (checkers ascend for context)."""
    parents: "dict[ast.AST, ast.AST]" = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


# -- registry and driver -------------------------------------------------------

Checker = Callable[[SourceFile, LintConfig], Iterable[Finding]]


def _registry() -> "dict[str, Checker]":
    # Imported here, not at module top: the checker modules import this
    # module for Finding/SourceFile, and a top-level import would cycle.
    from repro.analysis import determinism, hygiene, ipc, lifecycle, locks

    return {
        determinism.RULE: determinism.check,
        locks.RULE: locks.check,
        lifecycle.RULE: lifecycle.check,
        ipc.RULE: ipc.check,
        hygiene.RULE: hygiene.check,
    }


CHECKERS: "dict[str, Checker] | None" = None

RULES = (
    "determinism",
    "lock-discipline",
    "lifecycle",
    "ipc-protocol",
    "exception-hygiene",
    "suppression",
    "parse-error",
)


def checkers() -> "dict[str, Checker]":
    global CHECKERS
    if CHECKERS is None:
        CHECKERS = _registry()
    return CHECKERS


def iter_python_files(paths: "Sequence[str | Path]") -> "Iterator[Path]":
    """Every ``.py`` file under ``paths``, deterministically ordered."""
    seen: "set[Path]" = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def _display(path: Path, root: "Path | None") -> str:
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def lint_paths(
    paths: "Sequence[str | Path]",
    config: "LintConfig | None" = None,
    root: "str | Path | None" = None,
) -> "list[Finding]":
    """Run every enabled checker over ``paths``; surviving findings.

    Suppressed findings are dropped; suppressions *without a reason*
    surface as rule ``suppression`` findings so silencing stays
    accountable. Unparseable files surface as rule ``parse-error``.
    """
    config = config if config is not None else LintConfig()
    root = Path(root) if root is not None else None
    findings: "list[Finding]" = []
    for path in iter_python_files(paths):
        display = _display(path, root)
        try:
            source = SourceFile.load(path, display)
        except (SyntaxError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", None) or 1
            findings.append(
                Finding(
                    rule="parse-error",
                    path=display,
                    line=int(line),
                    col=0,
                    message=f"file does not parse: {exc.msg if hasattr(exc, 'msg') else exc}",
                )
            )
            continue
        raw: "list[Finding]" = []
        for rule, check in checkers().items():
            if config.enabled(rule):
                raw.extend(check(source, config))
        kept: "list[Finding]" = []
        used: "set[int]" = set()
        for finding in sorted(raw, key=lambda f: (f.line, f.col, f.rule)):
            suppression = source.suppressed(finding)
            if suppression is None:
                kept.append(finding)
            else:
                used.add(suppression.line)
        if config.enabled("suppression"):
            for number in sorted(used):
                suppression = source.suppressions[number]
                if not suppression.reason:
                    kept.append(
                        Finding(
                            rule="suppression",
                            path=display,
                            line=number,
                            col=0,
                            message=(
                                "suppression without a reason: write "
                                "'# repro-lint: ignore[rule] why it is safe'"
                            ),
                            symbol=",".join(suppression.rules),
                        )
                    )
        findings.extend(kept)
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def with_rules(config: LintConfig, rules: "Sequence[str]") -> LintConfig:
    return replace(config, rules=tuple(rules))
