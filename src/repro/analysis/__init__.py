"""repro-lint: AST-based enforcement of this repository's invariants.

Five checkers, one per convention the reliability posture depends on:
determinism (no entropy/clock/fs-order in the deterministic zones),
lock-discipline (``# guarded-by:`` / ``# caller holds`` annotations),
lifecycle (resource-owning classes are context-managed), ipc-protocol
(supervisor and worker op vocabularies match), and exception-hygiene
(broad handlers leave a trace). See docs/static-analysis.md for the
rule catalog and annotation syntax.
"""

from repro.analysis.core import Finding, LintConfig, lint_paths

__all__ = ["Finding", "LintConfig", "lint_paths"]
