"""Checker: no nondeterminism inside the deterministic zones.

The generation kernel (``repro/llm/``) and the layers whose outputs are
byte-compared across backends (``persist.py``, ``service.py``,
``sweep.py``) must derive every bit of output from the experiment
config and the named RNG streams. Two families of violations:

* **entropy/wall-clock reads** — ``time.time``/``time_ns``,
  ``datetime.now``/``utcnow``/``today``, module-level ``random.*``,
  ``np.random.*`` convenience calls, zero-argument ``default_rng()``,
  ``uuid.*``, ``os.urandom``, ``secrets.*``. Seeded constructions
  (``default_rng(seed)``, ``Generator``/``SeedSequence``/bit-generator
  classes) are fine.
* **unsorted filesystem iteration** — ``os.listdir``/``os.scandir``,
  ``glob.glob``/``iglob``, and ``Path.iterdir``/``glob``/``rglob``
  whose result is consumed directly. Directory order is
  filesystem-dependent; wrapping the call in an order-insensitive
  consumer (``sorted``, ``set``, ``len``, ...) makes it safe.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.core import Finding, LintConfig, SourceFile, dotted_name, in_zone

RULE = "determinism"

# Fully-qualified callables that read the clock or ambient entropy.
_BANNED_CALLS = {
    ("time", "time"): "wall-clock read",
    ("time", "time_ns"): "wall-clock read",
    ("datetime", "datetime", "now"): "wall-clock read",
    ("datetime", "datetime", "utcnow"): "wall-clock read",
    ("datetime", "datetime", "today"): "wall-clock read",
    ("datetime", "date", "today"): "wall-clock read",
    ("os", "urandom"): "ambient entropy",
    ("uuid", "uuid1"): "ambient entropy (uuid)",
    ("uuid", "uuid4"): "ambient entropy (uuid)",
}

# Seeded/explicit RNG constructions allowed inside the zones.
_ALLOWED_RNG_TAILS = {
    "Generator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
    "BitGenerator",
}

# Filesystem calls whose iteration order is not deterministic.
_FS_MODULE_CALLS = {("os", "listdir"), ("os", "scandir"), ("glob", "glob"), ("glob", "iglob")}
_FS_METHODS = {"iterdir", "glob", "rglob"}

# Wrapping one of these around the fs call makes order irrelevant.
_ORDER_INSENSITIVE = {
    "sorted",
    "set",
    "frozenset",
    "len",
    "sum",
    "min",
    "max",
    "any",
    "all",
    "list",
}
# ``list`` is only order-insensitive when itself sorted later; but
# ``sorted(list(...))`` is the common idiom and bare ``list(...)`` kept
# unsorted still surfaces at the consuming loop in review — we accept
# the approximation and document it in docs/static-analysis.md.


def _import_aliases(tree: ast.Module) -> "dict[str, tuple[str, ...]]":
    """local name -> fully-qualified dotted prefix it stands for."""
    aliases: "dict[str, tuple[str, ...]]" = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                name = item.asname or item.name.split(".")[0]
                target = item.name if item.asname else name
                aliases[name] = tuple(target.split("."))
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            base = tuple(node.module.split("."))
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = base + (item.name,)
    return aliases


def _qualify(parts: "tuple[str, ...]", aliases: "dict[str, tuple[str, ...]]") -> "tuple[str, ...]":
    head = aliases.get(parts[0])
    if head is not None:
        return head + parts[1:]
    return parts


def _enclosing_symbol(node: ast.AST, parents: "dict[ast.AST, ast.AST]") -> str:
    names: "list[str]" = []
    current: "ast.AST | None" = node
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.append(current.name)
        current = parents.get(current)
    return ".".join(reversed(names))


def _consumed_unordered(node: ast.Call, parents: "dict[ast.AST, ast.AST]") -> bool:
    """True when nothing order-insensitive wraps this fs call."""
    current: ast.AST = node
    parent = parents.get(current)
    while parent is not None:
        if isinstance(parent, ast.Call):
            func = parent.func
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
            if current in parent.args and name in _ORDER_INSENSITIVE:
                return False
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Module)):
            break
        current, parent = parent, parents.get(parent)
    return True


def check(source: SourceFile, config: LintConfig) -> "Iterable[Finding]":
    if not in_zone(source.display, config.deterministic_zones):
        return []
    return list(_scan(source))


def _scan(source: SourceFile) -> "Iterator[Finding]":
    from repro.analysis.core import build_parents

    aliases = _import_aliases(source.tree)
    parents = build_parents(source.tree)

    def finding(node: ast.AST, message: str, symbol_tail: str) -> Finding:
        symbol = _enclosing_symbol(node, parents)
        symbol = f"{symbol}.{symbol_tail}" if symbol else symbol_tail
        return Finding(
            rule=RULE,
            path=source.display,
            line=node.lineno,
            col=node.col_offset,
            message=message,
            symbol=symbol,
        )

    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        parts = dotted_name(node.func)
        if parts is None:
            # Method calls on non-name receivers: catch Path(...).iterdir() etc.
            if isinstance(node.func, ast.Attribute) and node.func.attr in _FS_METHODS:
                if _consumed_unordered(node, parents):
                    yield finding(
                        node,
                        f".{node.func.attr}() iterates the filesystem in arbitrary order; "
                        "wrap in sorted(...)",
                        node.func.attr,
                    )
            continue
        qualified = _qualify(parts, aliases)
        dotted = ".".join(qualified)

        reason = _BANNED_CALLS.get(qualified)
        if reason is not None:
            yield finding(node, f"{dotted}() is nondeterministic ({reason})", dotted)
            continue

        if qualified[0] in ("random", "secrets") and len(qualified) >= 2:
            yield finding(
                node,
                f"{dotted}() draws from process-global entropy; use a named, seeded "
                "numpy Generator stream",
                dotted,
            )
            continue
        if qualified[0] == "uuid" and len(qualified) >= 2:
            yield finding(node, f"{dotted}() is nondeterministic (ambient entropy)", dotted)
            continue

        if (
            "random" in qualified
            and qualified[-1] == "default_rng"
            and not node.args
            and not node.keywords
        ):
            yield finding(
                node,
                "default_rng() without a seed draws OS entropy; pass an explicit seed "
                "or SeedSequence",
                dotted,
            )
            continue
        if (
            len(qualified) >= 2
            and qualified[0] in ("numpy", "np")
            and "random" in qualified
            and qualified[-1] not in _ALLOWED_RNG_TAILS
            and qualified[-1] != "default_rng"
        ):
            yield finding(
                node,
                f"{dotted}() uses numpy's process-global RNG; use a named Generator stream",
                dotted,
            )
            continue

        # Unsorted filesystem iteration via module functions or methods.
        if tuple(qualified[:2]) in _FS_MODULE_CALLS or (
            len(qualified) == 2 and (qualified[0], qualified[1]) in _FS_MODULE_CALLS
        ):
            if _consumed_unordered(node, parents):
                yield finding(
                    node,
                    f"{dotted}() returns entries in arbitrary filesystem order; "
                    "wrap in sorted(...)",
                    dotted,
                )
            continue
        if isinstance(node.func, ast.Attribute) and node.func.attr in _FS_METHODS:
            if _consumed_unordered(node, parents):
                yield finding(
                    node,
                    f".{node.func.attr}() iterates the filesystem in arbitrary order; "
                    "wrap in sorted(...)",
                    node.func.attr,
                )
