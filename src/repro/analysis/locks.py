"""Checker: guarded attributes are only touched while their lock is held.

Two annotations drive this checker, both plain trailing comments:

* ``# guarded-by: self._lock`` on the line that declares or first
  assigns an attribute marks every ``self.<attr>`` access in that class
  as requiring the lock. A guard that is not an attribute of ``self``
  (e.g. ``# guarded-by: ProcessBackend._lock`` on a ``_Worker`` field
  owned by the supervisor's lock) is documentation only — the checker
  records it but cannot enforce a lock it cannot see from ``self``.
* ``# caller holds self._lock`` on a ``def`` line (the convention
  ``remote.py`` already uses) declares that every caller enters with
  the lock held, so the whole body counts as locked.

Enforcement is lexical: an access is satisfied by an enclosing
``with self._lock:`` block or a caller-holds annotation on the
enclosing method. ``__init__`` is exempt (the object is not shared
yet). Nested ``def``s do **not** inherit the enclosing ``with`` — they
are typically thread entry points (``Thread(target=read_loop)``) that
run after the lock is released — but ``lambda``s do, since they are
overwhelmingly consumed in place. Cross-object accesses
(``worker.inflight`` from the supervisor) are out of scope; so is
verifying that callers of a caller-holds method actually hold the lock.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, LintConfig, SourceFile

RULE = "lock-discipline"

_EXEMPT_METHODS = {"__init__"}


def _guard_lock_attr(guard: str) -> "str | None":
    """``self._lock`` -> ``_lock``; non-self guards are unenforceable."""
    parts = guard.split(".")
    if len(parts) == 2 and parts[0] == "self":
        return parts[1]
    return None


def _collect_guards(cls: ast.ClassDef, source: SourceFile) -> "dict[str, str]":
    """attr name -> guard string, from ``# guarded-by:`` comments."""
    guards: "dict[str, str]" = {}
    for node in ast.walk(cls):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            guard = source.guarded_by(node.lineno)
            if guard is None:
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    guards[target.attr] = guard
                elif isinstance(target, ast.Name):
                    # class-level declaration: ``_started: bool  # guarded-by: ...``
                    guards[target.id] = guard
    return guards


def _with_locks(node: ast.With) -> "set[str]":
    """Lock attrs (``self.<attr>``) acquired by one ``with`` statement."""
    held: "set[str]" = set()
    for item in node.items:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            held.add(expr.attr)
    return held


class _MethodScanner(ast.NodeVisitor):
    """Walk one method body tracking which self-locks are held."""

    def __init__(
        self,
        source: SourceFile,
        cls_name: str,
        method_name: str,
        guards: "dict[str, str]",
        held: "set[str]",
    ) -> None:
        self.source = source
        self.cls_name = cls_name
        self.method_name = method_name
        self.guards = guards
        self.held = held
        self.findings: "list[Finding]" = []

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: "ast.With | ast.AsyncWith") -> None:
        acquired = _with_locks(node) - self.held  # re-entry adds nothing
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        self.held |= acquired
        for child in node.body:
            self.visit(child)
        self.held -= acquired

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_nested(node)

    def _visit_nested(self, node: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        # A nested def may run on another thread after the enclosing
        # lock is gone: restart with only its own caller-holds set.
        nested_held = {
            attr
            for attr in (_guard_lock_attr(g) for g in self.source.caller_holds(node))
            if attr is not None
        }
        inner = _MethodScanner(
            self.source,
            self.cls_name,
            f"{self.method_name}.{node.name}",
            self.guards,
            nested_held,
        )
        for child in node.body:
            inner.visit(child)
        self.findings.extend(inner.findings)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in self.guards
        ):
            guard = self.guards[node.attr]
            lock_attr = _guard_lock_attr(guard)
            if lock_attr is not None and lock_attr not in self.held:
                self.findings.append(
                    Finding(
                        rule=RULE,
                        path=self.source.display,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"self.{node.attr} is guarded-by {guard} but accessed "
                            f"without it; wrap in 'with {guard}:' or annotate the "
                            f"method '# caller holds {guard}'"
                        ),
                        symbol=f"{self.cls_name}.{self.method_name}.{node.attr}",
                    )
                )
        self.generic_visit(node)


def check(source: SourceFile, config: LintConfig) -> "Iterable[Finding]":
    findings: "list[Finding]" = []
    for cls in ast.walk(source.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        guards = _collect_guards(cls, source)
        if not guards:
            continue
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in _EXEMPT_METHODS:
                continue
            held = {
                attr
                for attr in (
                    _guard_lock_attr(g) for g in source.caller_holds(method)
                )
                if attr is not None
            }
            scanner = _MethodScanner(source, cls.name, method.name, guards, held)
            for child in method.body:
                scanner.visit(child)
            findings.extend(scanner.findings)
    return findings
