"""Checker: broad exception handlers must not swallow silently.

A bare ``except:``, ``except Exception:`` or ``except BaseException:``
in the runtime tier is how a dead worker turns into a silent hang.
Broad handlers are allowed — the supervisor legitimately firewalls
itself against arbitrary worker failures — but each one must leave a
trace. A handler passes when its body does at least one of:

* re-raise (any ``raise``);
* log — a call into ``logging``/``logger``/``log``, a ``print``, or a
  ``traceback`` helper (``format_exc``/``print_exc``);
* count — an ``AugAssign`` (``self._n_errors += 1``) so the failure
  shows up in stats;
* use the bound exception (``except Exception as exc:`` where ``exc``
  is actually referenced — e.g. ``future.set_exception(exc)`` forwards
  the failure instead of dropping it).

Anything else is a swallow and gets flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, LintConfig, SourceFile, dotted_name, in_zone

RULE = "exception-hygiene"

_BROAD = {"Exception", "BaseException"}
_LOG_HEADS = {"logging", "logger", "log", "traceback", "warnings"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:
        return True  # bare except:
    candidates = node.elts if isinstance(node, ast.Tuple) else [node]
    for candidate in candidates:
        if isinstance(candidate, ast.Name) and candidate.id in _BROAD:
            return True
        if isinstance(candidate, ast.Attribute) and candidate.attr in _BROAD:
            return True
    return False


def _leaves_a_trace(handler: ast.ExceptHandler) -> bool:
    bound = handler.name
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.AugAssign):
            return True  # stats counter increment
        if isinstance(node, ast.Call):
            parts = dotted_name(node.func)
            if parts is not None:
                if parts[0] in _LOG_HEADS or parts[-1] == "print":
                    return True
                if parts[0] == "print":
                    return True
        if bound and isinstance(node, ast.Name) and node.id == bound:
            if isinstance(node.ctx, ast.Load) and node is not handler.type:
                return True
    return False


def _enclosing_symbol(
    handler: ast.ExceptHandler, parents: "dict[ast.AST, ast.AST]"
) -> str:
    names: "list[str]" = []
    current = parents.get(handler)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.append(current.name)
        current = parents.get(current)
    return ".".join(reversed(names))


def check(source: SourceFile, config: LintConfig) -> "Iterable[Finding]":
    if not in_zone(source.display, config.exception_zones):
        return []
    from repro.analysis.core import build_parents

    parents = build_parents(source.tree)
    findings: "list[Finding]" = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _is_broad(node):
            continue
        if _leaves_a_trace(node):
            continue
        caught = "bare except" if node.type is None else "except Exception"
        findings.append(
            Finding(
                rule=RULE,
                path=source.display,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"{caught} swallows the failure silently: re-raise, log, "
                    f"increment a stats counter, or forward the bound exception"
                ),
                symbol=_enclosing_symbol(node, parents),
            )
        )
    return findings
