"""``repro-lint``: run the invariant checkers from the command line.

Exit codes: 0 = clean (or fully baselined), 1 = findings, 2 = usage or
parse errors. ``--format github`` emits workflow-command annotations so
the CI job surfaces findings inline on the PR diff.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.core import RULES, Finding, LintConfig, lint_paths

_RULE_SUMMARIES = {
    "determinism": "no wall-clock/entropy reads or unsorted fs iteration in deterministic zones",
    "lock-discipline": (
        "guarded-by attributes only accessed under their lock or caller-holds methods"
    ),
    "lifecycle": "resource-owning classes are with-ed, finally-closed, or handed to an owner",
    "ipc-protocol": "supervisor/worker op vocabularies match exhaustively in both directions",
    "exception-hygiene": "broad except blocks re-raise, log, count, or forward the exception",
    "suppression": "every 'repro-lint: ignore' comment carries a reason",
    "parse-error": "every scanned file parses",
}


def build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static analysis for this repository's reliability invariants.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to scan (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format: human text, JSON, or GitHub workflow annotations",
    )
    parser.add_argument(
        "--rules",
        default="",
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON file; baselined findings are silenced",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot current findings into --baseline and exit 0",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="directory paths are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _emit(findings: "list[Finding]", fmt: str, stream) -> None:
    if fmt == "json":
        json.dump([finding.as_dict() for finding in findings], stream, indent=2)
        stream.write("\n")
        return
    for finding in findings:
        if fmt == "github":
            stream.write(
                f"::error file={finding.path},line={finding.line},"
                f"col={finding.col + 1},title=repro-lint[{finding.rule}]::"
                f"{finding.message}\n"
            )
        else:
            stream.write(finding.render() + "\n")


def main_lint(argv: "Sequence[str] | None" = None) -> int:
    parser = build_lint_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule:20s} {_RULE_SUMMARIES.get(rule, '')}")
        return 0

    rules = tuple(rule.strip() for rule in args.rules.split(",") if rule.strip())
    unknown = [rule for rule in rules if rule not in RULES]
    if unknown:
        print(f"repro-lint: unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    if args.write_baseline and not args.baseline:
        print("repro-lint: --write-baseline requires --baseline", file=sys.stderr)
        return 2

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"repro-lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    config = LintConfig(rules=rules)
    root = args.root if args.root is not None else Path.cwd()
    findings = lint_paths(args.paths, config=config, root=root)

    if args.write_baseline:
        write_baseline(args.baseline, findings)
        print(f"repro-lint: wrote {len(findings)} finding(s) to {args.baseline}")
        return 0

    silenced = 0
    if args.baseline:
        try:
            fingerprints = load_baseline(args.baseline)
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2
        findings, silenced = apply_baseline(findings, fingerprints)

    _emit(findings, args.format, sys.stdout)

    if findings and any(f.rule == "parse-error" for f in findings):
        return 2
    if args.format == "text" or args.format == "github":
        tail = f", {silenced} baselined" if silenced else ""
        print(f"repro-lint: {len(findings)} finding(s){tail}")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main_lint())
