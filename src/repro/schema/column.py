"""Column model.

A :class:`Column` records everything downstream consumers need: the
physical name (possibly dirty/abbreviated), the clean semantic words it
derives from, its type, and an optional natural-language description (BIRD
provides these; they may be missing, which raises linking difficulty).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

__all__ = ["ColumnType", "Column"]


class ColumnType(enum.Enum):
    """SQL column types supported by the corpus generator and executor."""

    INTEGER = "integer"
    REAL = "real"
    TEXT = "text"
    DATE = "date"  # stored as ISO text in SQLite
    BOOLEAN = "boolean"  # stored as 0/1 INTEGER in SQLite

    @property
    def sqlite_affinity(self) -> str:
        """The type name used in rendered DDL."""
        return {
            ColumnType.INTEGER: "INTEGER",
            ColumnType.REAL: "REAL",
            ColumnType.TEXT: "TEXT",
            ColumnType.DATE: "TEXT",
            ColumnType.BOOLEAN: "INTEGER",
        }[self]

    @property
    def is_numeric(self) -> bool:
        return self in (ColumnType.INTEGER, ColumnType.REAL, ColumnType.BOOLEAN)


@dataclass(frozen=True)
class Column:
    """A column of a table.

    Parameters
    ----------
    name:
        Physical identifier as it appears in DDL (may be abbreviated).
    ctype:
        Column type.
    semantic_words:
        The clean, human words the column derives from (``["education",
        "operations"]`` for a dirty name ``EdOps``). The question generator
        phrases questions with these words; the gap between them and the
        physical name is what makes dirty schemas hard to link.
    description:
        Optional natural-language description (BIRD metadata). ``None``
        models the paper's Figure 1(b) failure: "the schema does not
        provide enough information".
    is_primary:
        Whether the column is (part of) the primary key.
    value_pool:
        Name of the value pool used for data population.
    """

    name: str
    ctype: ColumnType
    semantic_words: tuple[str, ...] = ()
    description: "str | None" = None
    is_primary: bool = False
    value_pool: str = "generic"
    unique: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("column name must be non-empty")

    @property
    def surface(self) -> str:
        """The phrase users would say for this column."""
        return " ".join(self.semantic_words) if self.semantic_words else self.name

    @property
    def has_description(self) -> bool:
        return bool(self.description)

    def renamed(self, new_name: str) -> "Column":
        """Copy with a different physical name (keeps semantics)."""
        return replace(self, name=new_name)

    def without_description(self) -> "Column":
        return replace(self, description=None)
