"""Table and foreign-key models."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.schema.column import Column

__all__ = ["ForeignKey", "Table"]


@dataclass(frozen=True)
class ForeignKey:
    """A foreign key edge ``table.column -> ref_table.ref_column``."""

    column: str
    ref_table: str
    ref_column: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.column} -> {self.ref_table}.{self.ref_column}"


@dataclass(frozen=True)
class Table:
    """A table: named columns plus outgoing foreign keys.

    ``semantic_words`` mirrors :class:`Column.semantic_words`: the clean
    phrase for the entity the table stores, independent of the (possibly
    dirty) physical name.
    """

    name: str
    columns: tuple[Column, ...]
    semantic_words: tuple[str, ...] = ()
    description: "str | None" = None
    foreign_keys: tuple[ForeignKey, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("table name must be non-empty")
        if not self.columns:
            raise ValueError(f"table {self.name!r} must have at least one column")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in table {self.name!r}: {names}")
        for fk in self.foreign_keys:
            if fk.column not in set(names):
                raise ValueError(
                    f"foreign key column {fk.column!r} not in table {self.name!r}"
                )

    @property
    def surface(self) -> str:
        """The phrase users would say for this table."""
        return " ".join(self.semantic_words) if self.semantic_words else self.name

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @property
    def primary_key(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns if c.is_primary)

    def column(self, name: str) -> Column:
        """Look up a column by (case-insensitive) name."""
        for col in self.columns:
            if col.name.lower() == name.lower():
                return col
        raise KeyError(f"no column {name!r} in table {self.name!r}")

    def has_column(self, name: str) -> bool:
        return any(c.name.lower() == name.lower() for c in self.columns)

    def with_columns(self, columns: tuple[Column, ...]) -> "Table":
        return replace(self, columns=columns)

    def renamed(self, new_name: str) -> "Table":
        return replace(self, name=new_name)
