"""Database model: a named collection of tables with FK integrity checks."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.schema.column import Column
from repro.schema.table import Table

__all__ = ["Database"]


@dataclass(frozen=True)
class Database:
    """A relational database schema.

    Attributes
    ----------
    name:
        Database identifier (e.g. ``formula_1``).
    tables:
        Ordered tables; order is the canonical generation order used by the
        schema-linking LLM (gold token sequences list tables in this
        order).
    domain:
        Name of the domain archetype the schema was generated from.
    dirty:
        Whether identifiers were dirtied (BIRD-style).
    knowledge:
        External-knowledge snippets attached to the database (BIRD
        provides these per-sample; we attach them per-database and
        reference them from questions).
    """

    name: str
    tables: tuple[Table, ...]
    domain: str = ""
    dirty: bool = False
    knowledge: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        names = [t.name for t in self.tables]
        if len(set(n.lower() for n in names)) != len(names):
            raise ValueError(f"duplicate table names in database {self.name!r}")
        by_name = {t.name.lower(): t for t in self.tables}
        for table in self.tables:
            for fk in table.foreign_keys:
                ref = by_name.get(fk.ref_table.lower())
                if ref is None:
                    raise ValueError(
                        f"{table.name}.{fk.column} references missing table "
                        f"{fk.ref_table!r}"
                    )
                if not ref.has_column(fk.ref_column):
                    raise ValueError(
                        f"{table.name}.{fk.column} references missing column "
                        f"{fk.ref_table}.{fk.ref_column}"
                    )

    # -- lookups ---------------------------------------------------------

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(t.name for t in self.tables)

    def table(self, name: str) -> Table:
        for t in self.tables:
            if t.name.lower() == name.lower():
                return t
        raise KeyError(f"no table {name!r} in database {self.name!r}")

    def has_table(self, name: str) -> bool:
        return any(t.name.lower() == name.lower() for t in self.tables)

    def column(self, table_name: str, column_name: str) -> Column:
        return self.table(table_name).column(column_name)

    @property
    def n_columns(self) -> int:
        return sum(len(t.columns) for t in self.tables)

    def qualified_columns(self) -> list[tuple[str, str]]:
        """All (table, column) name pairs in canonical order."""
        return [(t.name, c.name) for t in self.tables for c in t.columns]

    # -- joins -----------------------------------------------------------

    def join_condition(self, left: str, right: str) -> "tuple[str, str, str, str] | None":
        """Find an FK join path between two tables.

        Returns ``(left_table, left_col, right_table, right_col)`` for the
        first FK connecting them (either direction), or ``None``.
        """
        lt, rt = self.table(left), self.table(right)
        for fk in lt.foreign_keys:
            if fk.ref_table.lower() == rt.name.lower():
                return (lt.name, fk.column, rt.name, fk.ref_column)
        for fk in rt.foreign_keys:
            if fk.ref_table.lower() == lt.name.lower():
                return (rt.name, fk.column, lt.name, fk.ref_column)
        return None

    def neighbors(self, table_name: str) -> list[str]:
        """Tables connected to ``table_name`` by a foreign key."""
        out: list[str] = []
        t = self.table(table_name)
        for fk in t.foreign_keys:
            out.append(self.table(fk.ref_table).name)
        for other in self.tables:
            if other.name == t.name:
                continue
            for fk in other.foreign_keys:
                if fk.ref_table.lower() == t.name.lower():
                    out.append(other.name)
        # stable de-dup
        seen: set[str] = set()
        uniq = []
        for n in out:
            if n.lower() not in seen:
                seen.add(n.lower())
                uniq.append(n)
        return uniq

    # -- projections -----------------------------------------------------

    def subset(
        self,
        table_names: "list[str] | set[str]",
        columns: "dict[str, list[str]] | None" = None,
    ) -> "Database":
        """A new database containing only the given tables (and columns).

        Used to build the schema handed to the downstream SQL generator:
        golden schema = subset(gold tables, gold columns); RTS schema =
        subset(linked tables, linked columns). Foreign keys referencing
        dropped tables/columns are removed.
        """
        keep = {n.lower() for n in table_names}
        new_tables: list[Table] = []
        for t in self.tables:
            if t.name.lower() not in keep:
                continue
            cols = t.columns
            if columns is not None and t.name in columns:
                wanted = {c.lower() for c in columns[t.name]}
                # Always keep primary keys so the table stays joinable.
                cols = tuple(
                    c for c in t.columns if c.name.lower() in wanted or c.is_primary
                )
                if not cols:
                    cols = t.columns[:1]
            col_names = {c.name for c in cols}
            fks = tuple(
                fk
                for fk in t.foreign_keys
                if fk.ref_table.lower() in keep and fk.column in col_names
            )
            new_tables.append(replace(t, columns=cols, foreign_keys=fks))
        return replace(self, tables=tuple(new_tables))
