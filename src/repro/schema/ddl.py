"""DDL rendering: CREATE TABLE statements and prompt-style schema text.

Two renderings are provided:

* :func:`render_database_ddl` — executable SQLite DDL, used by the
  materializer.
* :func:`schema_prompt` — the DDL-with-comments serialization that the
  schema-linking LLM and the surrogate model consume (the paper's user
  study notes questions "present the schema in a DDL format").
"""

from __future__ import annotations

from repro.schema.database import Database
from repro.schema.table import Table

__all__ = ["render_create_table", "render_database_ddl", "schema_prompt"]


def _quote(name: str) -> str:
    """Quote an identifier when needed (dirty names may clash with keywords)."""
    if name.isidentifier() and name.lower() not in _SQLITE_KEYWORDS:
        return name
    return f'"{name}"'


_SQLITE_KEYWORDS = {
    "table",
    "select",
    "from",
    "where",
    "group",
    "order",
    "index",
    "values",
    "primary",
    "key",
    "references",
    "join",
    "on",
    "as",
    "and",
    "or",
    "not",
    "limit",
    "offset",
    "check",
    "default",
}


def render_create_table(table: Table) -> str:
    """Render one executable CREATE TABLE statement."""
    lines = []
    for col in table.columns:
        lines.append(f"  {_quote(col.name)} {col.ctype.sqlite_affinity}")
    pk = table.primary_key
    if pk:
        lines.append(f"  PRIMARY KEY ({', '.join(_quote(c) for c in pk)})")
    for fk in table.foreign_keys:
        lines.append(
            f"  FOREIGN KEY ({_quote(fk.column)}) REFERENCES "
            f"{_quote(fk.ref_table)}({_quote(fk.ref_column)})"
        )
    body = ",\n".join(lines)
    return f"CREATE TABLE {_quote(table.name)} (\n{body}\n);"


def render_database_ddl(db: Database) -> str:
    """Render the full executable DDL for a database."""
    return "\n\n".join(render_create_table(t) for t in db.tables)


def schema_prompt(db: Database, include_descriptions: bool = True) -> str:
    """Render the schema as the LLM prompt serialization.

    DDL-like, with ``--`` comments carrying column descriptions where
    available. Missing descriptions are simply absent — exactly the
    failure mode of Figure 1(b).
    """
    blocks: list[str] = [f"-- Database: {db.name}"]
    for table in db.tables:
        lines = [f"CREATE TABLE {table.name} ("]
        for col in table.columns:
            comment = ""
            if include_descriptions and col.description:
                comment = f"  -- {col.description}"
            lines.append(f"  {col.name} {col.ctype.sqlite_affinity},{comment}")
        pk = table.primary_key
        if pk:
            lines.append(f"  PRIMARY KEY ({', '.join(pk)})")
        for fk in table.foreign_keys:
            lines.append(
                f"  FOREIGN KEY ({fk.column}) REFERENCES {fk.ref_table}({fk.ref_column})"
            )
        lines.append(");")
        blocks.append("\n".join(lines))
    if include_descriptions and db.knowledge:
        blocks.append("-- External knowledge:")
        blocks.extend(f"--   {k}" for k in db.knowledge)
    return "\n\n".join(blocks)
