"""Catalog: a named collection of databases (one benchmark's schema set)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.schema.database import Database

__all__ = ["Catalog"]


@dataclass
class Catalog:
    """An ordered, name-indexed collection of databases."""

    name: str
    databases: list[Database] = field(default_factory=list)

    def add(self, db: Database) -> None:
        if self.has(db.name):
            raise ValueError(f"catalog {self.name!r} already has database {db.name!r}")
        self.databases.append(db)

    def has(self, name: str) -> bool:
        return any(d.name.lower() == name.lower() for d in self.databases)

    def get(self, name: str) -> Database:
        for d in self.databases:
            if d.name.lower() == name.lower():
                return d
        raise KeyError(f"no database {name!r} in catalog {self.name!r}")

    def __len__(self) -> int:
        return len(self.databases)

    def __iter__(self):
        return iter(self.databases)

    @property
    def n_tables(self) -> int:
        return sum(len(d.tables) for d in self.databases)

    @property
    def n_columns(self) -> int:
        return sum(d.n_columns for d in self.databases)

    def summary(self) -> dict[str, float]:
        """Aggregate statistics used in dataset cards and tests."""
        if not self.databases:
            return {"databases": 0, "tables": 0, "columns": 0, "avg_tables": 0.0}
        return {
            "databases": len(self.databases),
            "tables": self.n_tables,
            "columns": self.n_columns,
            "avg_tables": self.n_tables / len(self.databases),
            "avg_columns_per_table": self.n_columns / max(1, self.n_tables),
        }
