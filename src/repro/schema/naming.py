"""Identifier naming styles: clean (Spider-like) vs dirty (BIRD-like).

The corpus generator produces schemas whose tables/columns carry clean
``semantic_words``; this module derives the *physical* identifiers. The
dirty style abbreviates and mangles names (``education operations`` ->
``EdOps``), drops a fraction of descriptions, and is the principal driver
of schema-linking difficulty on the BIRD-like benchmark.
"""

from __future__ import annotations

import enum
from dataclasses import replace

import numpy as np

from repro.schema.column import Column
from repro.schema.database import Database
from repro.schema.table import ForeignKey, Table
from repro.utils.text import abbreviate, to_camel_case, to_snake_case

__all__ = ["NamingStyle", "rename_database", "dirty_name", "clean_name"]


class NamingStyle(enum.Enum):
    """How physical identifiers are derived from semantic words."""

    SNAKE = "snake"
    CAMEL = "camel"
    DIRTY = "dirty"

    def render(self, words: tuple[str, ...], rng: "np.random.Generator | None" = None) -> str:
        if self is NamingStyle.SNAKE:
            return to_snake_case(list(words))
        if self is NamingStyle.CAMEL:
            return to_camel_case(list(words))
        if rng is None:
            raise ValueError("DIRTY style requires an rng")
        return dirty_name(words, rng)


def clean_name(words: tuple[str, ...], camel: bool = False) -> str:
    """Clean physical name from semantic words."""
    return to_camel_case(list(words)) if camel else to_snake_case(list(words))


def dirty_name(words: tuple[str, ...], rng: np.random.Generator) -> str:
    """A dirty, real-world style identifier for the given words.

    Mimics BIRD: abbreviations (``EdOps``), ALLCAPS acronym fragments
    (``T_BIL``), inconsistent separators.
    """
    if not words:
        raise ValueError("cannot name an empty word tuple")
    mode = rng.choice(["abbrev_pascal", "acronym_underscore", "truncate", "mixed"])
    if mode == "abbrev_pascal":
        # education operations -> EdOps
        parts = [abbreviate(w).capitalize() for w in words]
        return "".join(parts)
    if mode == "acronym_underscore":
        # total bilirubin -> T_BIL
        if len(words) == 1:
            return words[0][:4].upper()
        return "_".join(w[0].upper() if i == 0 else abbreviate(w).upper() for i, w in enumerate(words))
    if mode == "truncate":
        # registration date -> regdate
        return "".join(abbreviate(w, keep=4) for w in words)
    # mixed: first word whole, rest abbreviated camel
    head, *rest = words
    return head.lower() + "".join(abbreviate(w).capitalize() for w in rest)


def rename_database(
    db: Database,
    style: NamingStyle,
    rng: np.random.Generator,
    dirty_fraction: float = 0.6,
    description_drop: float = 0.35,
) -> Database:
    """Re-derive all physical identifiers of ``db`` under ``style``.

    For :attr:`NamingStyle.DIRTY`, each identifier is independently
    dirtied with probability ``dirty_fraction`` (otherwise kept snake) and
    each column description is dropped with probability
    ``description_drop``. Foreign-key references are rewritten
    consistently. Name collisions within a table/database are resolved by
    suffixing.
    """
    table_renames: dict[str, str] = {}
    used_tables: set[str] = set()
    new_tables: list[Table] = []

    # First pass: table names.
    for table in db.tables:
        words = table.semantic_words or (table.name,)
        if style is NamingStyle.DIRTY and rng.random() < dirty_fraction:
            name = dirty_name(words, rng)
        else:
            name = style.render(words, rng) if style is not NamingStyle.DIRTY else to_snake_case(list(words))
        base = name
        k = 2
        while name.lower() in used_tables:
            name = f"{base}{k}"
            k += 1
        used_tables.add(name.lower())
        table_renames[table.name] = name

    # Second pass: columns + rewritten FKs.
    column_renames: dict[tuple[str, str], str] = {}
    for table in db.tables:
        used_cols: set[str] = set()
        new_cols: list[Column] = []
        for col in table.columns:
            words = col.semantic_words or (col.name,)
            if col.is_primary or col.name.lower().endswith("id"):
                # Keys keep a recognizable *_id form so joins stay readable.
                name = to_snake_case(list(words))
            elif style is NamingStyle.DIRTY and rng.random() < dirty_fraction:
                name = dirty_name(words, rng)
            elif style is NamingStyle.DIRTY:
                name = to_snake_case(list(words))
            else:
                name = style.render(words, rng)
            base = name
            k = 2
            while name.lower() in used_cols:
                name = f"{base}{k}"
                k += 1
            used_cols.add(name.lower())
            column_renames[(table.name, col.name)] = name
            new_col = col.renamed(name)
            if (
                style is NamingStyle.DIRTY
                and new_col.description
                and rng.random() < description_drop
            ):
                new_col = new_col.without_description()
            new_cols.append(new_col)
        fks = tuple(
            ForeignKey(
                column=column_renames[(table.name, fk.column)],
                ref_table=table_renames[fk.ref_table],
                ref_column=column_renames.get(
                    (fk.ref_table, fk.ref_column), fk.ref_column
                ),
            )
            for fk in table.foreign_keys
        )
        new_tables.append(
            replace(
                table,
                name=table_renames[table.name],
                columns=tuple(new_cols),
                foreign_keys=fks,
            )
        )
    return replace(
        db, tables=tuple(new_tables), dirty=(style is NamingStyle.DIRTY)
    )
