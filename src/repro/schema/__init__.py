"""Relational schema model: columns, tables, databases, DDL rendering.

This subpackage is the substrate shared by the corpus generator (which
synthesizes schemas), the SQLite engine (which materializes them), and the
LLM simulator (whose constrained decoder is built from identifier
vocabularies).
"""

from repro.schema.column import Column, ColumnType
from repro.schema.table import ForeignKey, Table
from repro.schema.database import Database
from repro.schema.ddl import render_create_table, render_database_ddl, schema_prompt
from repro.schema.naming import NamingStyle, rename_database
from repro.schema.catalog import Catalog

__all__ = [
    "Column",
    "ColumnType",
    "ForeignKey",
    "Table",
    "Database",
    "Catalog",
    "NamingStyle",
    "rename_database",
    "render_create_table",
    "render_database_ddl",
    "schema_prompt",
]
