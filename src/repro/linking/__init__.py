"""Schema linking: instances, the linker wrapper, metrics and traces.

``SchemaLinker``/``LinkingPrediction``/``BranchDataset`` are exposed
lazily (PEP 562): they depend on :mod:`repro.llm`, which itself imports
:mod:`repro.linking.instance`, and eager imports would close that cycle.
"""

from repro.linking.instance import SchemaLinkingInstance, column_item, parse_column_item
from repro.linking.metrics import LinkingMetrics, exact_match, precision_recall

__all__ = [
    "SchemaLinkingInstance",
    "column_item",
    "parse_column_item",
    "LinkingMetrics",
    "exact_match",
    "precision_recall",
    "SchemaLinker",
    "LinkingPrediction",
    "BranchDataset",
    "collect_branch_dataset",
]

_LAZY = {
    "SchemaLinker": ("repro.linking.linker", "SchemaLinker"),
    "LinkingPrediction": ("repro.linking.linker", "LinkingPrediction"),
    "BranchDataset": ("repro.linking.dataset", "BranchDataset"),
    "collect_branch_dataset": ("repro.linking.dataset", "collect_branch_dataset"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
