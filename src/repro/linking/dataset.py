"""D_branch construction (paper §3.1).

Replays teacher-forced generations over labelled linking queries and
collects, for every generated token, the per-layer hidden states plus the
branching-point label. Labels are derived *by comparison with the gold
stream* — ``proposed != committed`` under teacher forcing — exactly the
paper's protocol; the simulator's private error plan is never consulted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linking.instance import SchemaLinkingInstance
from repro.llm.model import TransparentLLM

__all__ = ["BranchDataset", "collect_branch_dataset"]


@dataclass
class BranchDataset:
    """Token-level probing dataset.

    Attributes
    ----------
    hidden:
        ``(n_tokens, n_layers, dim)`` hidden-state stacks.
    labels:
        ``(n_tokens,)`` booleans; True at branching points.
    groups:
        ``(n_tokens,)`` instance indices — splits must respect generation
        boundaries (tokens of one generation are not exchangeable with
        themselves).
    instance_ids:
        Instance id per group index.
    """

    hidden: np.ndarray
    labels: np.ndarray
    groups: np.ndarray
    instance_ids: list[str]

    def __post_init__(self) -> None:
        if not (len(self.hidden) == len(self.labels) == len(self.groups)):
            raise ValueError("hidden/labels/groups must align")

    @property
    def n_tokens(self) -> int:
        return int(len(self.labels))

    @property
    def n_layers(self) -> int:
        return int(self.hidden.shape[1]) if self.hidden.ndim == 3 else 0

    @property
    def positive_rate(self) -> float:
        return float(self.labels.mean()) if len(self.labels) else 0.0

    def layer(self, layer_index: int) -> np.ndarray:
        """Feature matrix of one hidden layer, shape (n_tokens, dim)."""
        return self.hidden[:, layer_index, :]

    def split_by_group(
        self, fraction: float, rng: np.random.Generator
    ) -> tuple["BranchDataset", "BranchDataset"]:
        """Split into (first, second) by *generation*, not by token."""
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        unique = np.unique(self.groups)
        perm = rng.permutation(unique)
        cut = max(1, int(round(fraction * len(unique))))
        mask = np.isin(self.groups, perm[:cut])
        return self._mask(mask), self._mask(~mask)

    def _mask(self, mask: np.ndarray) -> "BranchDataset":
        return BranchDataset(
            hidden=self.hidden[mask],
            labels=self.labels[mask],
            groups=self.groups[mask],
            instance_ids=self.instance_ids,
        )

    def branching_counts_per_generation(self) -> np.ndarray:
        """Branching points per generation (Figure 3b's histogram input)."""
        if not len(self.groups):
            return np.zeros(0, dtype=int)
        unique = np.unique(self.groups)
        counts = np.bincount(
            self.groups, weights=self.labels, minlength=int(unique[-1]) + 1
        )
        return counts[unique].astype(int)


def collect_branch_dataset(
    llm: TransparentLLM,
    instances: "list[SchemaLinkingInstance]",
    traces: "list | None" = None,
) -> BranchDataset:
    """Run teacher-forced generation over ``instances`` and collect tokens.

    ``traces`` optionally supplies pre-computed teacher-forced traces
    aligned with ``instances`` (e.g. fanned out by a
    :class:`~repro.runtime.runner.BatchRunner`); assembly is identical
    either way.
    """
    if traces is not None and len(traces) != len(instances):
        raise ValueError("traces must align one-to-one with instances")
    hidden_blocks: list[np.ndarray] = []
    label_blocks: list[np.ndarray] = []
    group_blocks: list[np.ndarray] = []
    ids: list[str] = []
    for idx, instance in enumerate(instances):
        trace = traces[idx] if traces is not None else llm.teacher_forced_trace(instance)
        ids.append(instance.instance_id)
        if not trace.steps:
            continue
        # Columnar assembly: one (n, layers, dim) block per trace (a view
        # of the trace's hidden stack on the fast path) instead of one
        # Python list entry per token.
        hidden_blocks.append(trace.hidden_matrix())
        # Label derivation per §3.1: the proposal diverged from the
        # gold continuation (which teacher forcing then committed).
        label_blocks.append(
            np.fromiter(
                (step.proposed != step.committed for step in trace.steps),
                dtype=bool,
                count=len(trace.steps),
            )
        )
        group_blocks.append(np.full(len(trace.steps), idx, dtype=int))
    if not hidden_blocks:
        raise ValueError("no tokens collected — empty instance list?")
    return BranchDataset(
        hidden=np.concatenate(hidden_blocks),
        labels=np.concatenate(label_blocks),
        groups=np.concatenate(group_blocks),
        instance_ids=ids,
    )
