"""Schema-linking metrics: exact set match, precision, recall (§4.2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["LinkingMetrics", "exact_match", "precision_recall", "evaluate_linking"]


def _norm(items: Iterable[str]) -> frozenset[str]:
    return frozenset(i.lower() for i in items)


def exact_match(gold: Iterable[str], predicted: Iterable[str]) -> bool:
    """Exact set match: predicted set equals gold set (case-insensitive)."""
    return _norm(gold) == _norm(predicted)


def precision_recall(
    gold: Iterable[str], predicted: Iterable[str]
) -> tuple[float, float]:
    """Per-instance precision and recall as defined in §4.2.

    An empty prediction has precision 1 by convention (no false
    positives); empty gold never occurs in the benchmarks.
    """
    g, p = _norm(gold), _norm(predicted)
    tp = len(g & p)
    precision = tp / len(p) if p else 1.0
    recall = tp / len(g) if g else 1.0
    return precision, recall


@dataclass(frozen=True)
class LinkingMetrics:
    """Aggregate linking quality over a collection of instances."""

    exact_match: float
    precision: float
    recall: float
    n: int

    def as_row(self) -> tuple[float, float, float]:
        """Percent-scaled (EM, P, R) — the paper's Table 2 layout."""
        return (
            100.0 * self.exact_match,
            100.0 * self.precision,
            100.0 * self.recall,
        )


def evaluate_linking(
    pairs: "Sequence[tuple[Iterable[str], Iterable[str]]]",
) -> LinkingMetrics:
    """Aggregate (gold, predicted) pairs into :class:`LinkingMetrics`."""
    if not pairs:
        return LinkingMetrics(float("nan"), float("nan"), float("nan"), 0)
    em = 0
    precisions: list[float] = []
    recalls: list[float] = []
    for gold, predicted in pairs:
        em += int(exact_match(gold, predicted))
        p, r = precision_recall(gold, predicted)
        precisions.append(p)
        recalls.append(r)
    n = len(pairs)
    return LinkingMetrics(
        exact_match=em / n,
        precision=sum(precisions) / n,
        recall=sum(recalls) / n,
        n=n,
    )
