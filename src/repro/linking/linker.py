"""SchemaLinker: the plain (abstention-free) linking model wrapper.

Wraps a :class:`TransparentLLM` and exposes set-level predictions — the
baseline whose Table 2 numbers RTS improves on by abstaining.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.linking.instance import SchemaLinkingInstance
from repro.linking.metrics import LinkingMetrics, evaluate_linking
from repro.llm.model import GenerationTrace, TransparentLLM

__all__ = ["LinkingPrediction", "SchemaLinker"]


@dataclass
class LinkingPrediction:
    """Free-generation linking output for one instance."""

    instance: SchemaLinkingInstance
    items: tuple[str, ...]
    trace: GenerationTrace

    @property
    def correct(self) -> bool:
        return {i.lower() for i in self.items} == {
            i.lower() for i in self.instance.gold_items
        }


class SchemaLinker:
    """Predicts linked schema items by free generation (no abstention)."""

    def __init__(self, llm: TransparentLLM):
        self.llm = llm

    def predict(self, instance: SchemaLinkingInstance) -> LinkingPrediction:
        trace = self.llm.generate(instance)
        return LinkingPrediction(instance=instance, items=trace.items, trace=trace)

    def predict_many(
        self, instances: "Sequence[SchemaLinkingInstance]"
    ) -> list[LinkingPrediction]:
        return [self.predict(inst) for inst in instances]

    def evaluate(
        self, instances: "Sequence[SchemaLinkingInstance]"
    ) -> LinkingMetrics:
        """Table 2's protocol: free generation scored by EM / P / R."""
        pairs = [
            (inst.gold_items, self.predict(inst).items) for inst in instances
        ]
        return evaluate_linking(pairs)
