"""Schema-linking instances: the unit of work for the linking model.

An instance fixes the task (table or column linking), the candidate item
universe (all table names, or all ``table.column`` pairs), and the gold
items in canonical schema order — the order the fine-tuned model is
trained to emit (§2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.dataset import Example, InstanceFeatures
from repro.schema.database import Database

__all__ = [
    "SchemaLinkingInstance",
    "column_item",
    "parse_column_item",
    "TABLE_TASK",
    "COLUMN_TASK",
]

TABLE_TASK = "table"
COLUMN_TASK = "column"


def column_item(table: str, column: str) -> str:
    """Canonical item string for a column: ``table.column``."""
    return f"{table}.{column}"


def parse_column_item(item: str) -> tuple[str, str]:
    """Inverse of :func:`column_item`."""
    table, _, column = item.partition(".")
    if not column:
        raise ValueError(f"not a column item: {item!r}")
    return table, column


@dataclass(frozen=True)
class SchemaLinkingInstance:
    """One schema-linking query: predict ``gold_items`` among ``candidates``.

    ``candidates`` is the constrained-decoding universe (every table name,
    or every qualified column) in canonical schema order; ``gold_items``
    is the correct answer in the same order.
    """

    instance_id: str
    db: Database
    question: str
    features: InstanceFeatures
    task: str
    candidates: tuple[str, ...]
    gold_items: tuple[str, ...]
    difficulty: str = "simple"
    knowledge: "str | None" = None

    def __post_init__(self) -> None:
        if self.task not in (TABLE_TASK, COLUMN_TASK):
            raise ValueError(f"unknown task {self.task!r}")
        cand = set(self.candidates)
        missing = [g for g in self.gold_items if g not in cand]
        if missing:
            raise ValueError(f"gold items not in candidates: {missing}")
        if len(set(self.candidates)) != len(self.candidates):
            raise ValueError("duplicate candidates")

    # -- constructors ------------------------------------------------------

    @classmethod
    def for_tables(cls, example: Example, db: Database) -> "SchemaLinkingInstance":
        """Table-linking instance for a benchmark example."""
        candidates = tuple(t.name for t in db.tables)
        gold_set = {t.lower() for t in example.gold_tables}
        gold = tuple(t for t in candidates if t.lower() in gold_set)
        return cls(
            instance_id=f"{example.example_id}/table",
            db=db,
            question=example.question,
            features=example.features,
            task=TABLE_TASK,
            candidates=candidates,
            gold_items=gold,
            difficulty=example.difficulty,
            knowledge=example.knowledge,
        )

    @classmethod
    def for_columns(
        cls,
        example: Example,
        db: Database,
        restrict_tables: "tuple[str, ...] | None" = None,
    ) -> "SchemaLinkingInstance":
        """Column-linking instance.

        Without ``restrict_tables`` the candidate universe is every column
        in the database (the paper's *independent* column-linking
        evaluation). With it, candidates come only from the given tables
        (the *joint* pipeline: tables first, then columns). Gold columns
        belonging to excluded tables are dropped from the instance's gold
        — the joint evaluation accounts for them at the pipeline level.
        """
        if restrict_tables is None:
            tables = [t.name for t in db.tables]
        else:
            allowed = {t.lower() for t in restrict_tables}
            tables = [t.name for t in db.tables if t.name.lower() in allowed]
        candidates = tuple(
            column_item(t, c.name) for t in tables for c in db.table(t).columns
        )
        gold_pairs = {
            (t.lower(), c.lower())
            for t, cols in example.gold_columns.items()
            for c in cols
        }
        gold = tuple(
            item
            for item in candidates
            if (lambda tc: (tc[0].lower(), tc[1].lower()) in gold_pairs)(
                parse_column_item(item)
            )
        )
        return cls(
            instance_id=f"{example.example_id}/column",
            db=db,
            question=example.question,
            features=example.features,
            task=COLUMN_TASK,
            candidates=candidates,
            gold_items=gold,
            difficulty=example.difficulty,
            knowledge=example.knowledge,
        )
