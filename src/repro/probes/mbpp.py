"""Conformal Multi-Layer Branching Point Predictor (mBPP, §3.2.3).

Trains one sBPP per hidden layer, keeps the top-k by calibration AUC, and
aggregates their conformal sets per token — by Algorithm 1's random
permutation (the paper's choice) or by majority vote.

A token is declared a branching point iff label 1 appears in the final
aggregated set.
"""

from __future__ import annotations


import numpy as np

from repro.conformal.aggregate import majority_vote, random_permutation
from repro.linking.dataset import BranchDataset
from repro.probes.mlp import MLPConfig
from repro.probes.sbpp import SingleLayerBPP
from repro.probes.selection import rank_layers
from repro.utils.rng import spawn

__all__ = ["MultiLayerBPP"]

PERMUTATION = "permutation"
MAJORITY = "majority"


class MultiLayerBPP:
    """Aggregated branching point predictor over selected hidden layers."""

    def __init__(
        self,
        sbpps: "list[SingleLayerBPP]",
        method: str = PERMUTATION,
        theta: float = 0.5,
        seed: int = 0,
    ):
        if not sbpps:
            raise ValueError("need at least one sBPP")
        if method not in (PERMUTATION, MAJORITY):
            raise ValueError(f"unknown aggregation method {method!r}")
        self.sbpps = sbpps
        self.method = method
        self.theta = theta
        self.seed = seed
        # When built via train(), every layer's probe is kept here so
        # variants (different k / alpha / aggregation) can be derived
        # without re-training.
        self.all_probes: "list[SingleLayerBPP]" = list(sbpps)

    def with_alpha(self, alpha: float) -> "MultiLayerBPP":
        """Re-calibrated copy at a new error level (probes reused)."""
        clone = MultiLayerBPP(
            sbpps=[p.with_alpha(alpha) for p in self.sbpps],
            method=self.method,
            theta=self.theta,
            seed=self.seed,
        )
        clone.all_probes = [p.with_alpha(alpha) for p in self.all_probes]
        return clone

    def subset(self, k: int, method: "str | None" = None) -> "MultiLayerBPP":
        """An mBPP over the top-k of *all* trained probes."""
        keep = rank_layers([p.auc for p in self.all_probes], min(k, len(self.all_probes)))
        clone = MultiLayerBPP(
            sbpps=[self.all_probes[i] for i in keep],
            method=method or self.method,
            theta=self.theta,
            seed=self.seed,
        )
        clone.all_probes = list(self.all_probes)
        return clone

    # -- training -------------------------------------------------------------

    @classmethod
    def train(
        cls,
        dataset: BranchDataset,
        alpha: float = 0.1,
        k: int = 5,
        calib_fraction: float = 0.5,
        mondrian: bool = True,
        conformal_mode: str = "split",
        method: str = PERMUTATION,
        mlp_config: "MLPConfig | None" = None,
        seed: int = 0,
    ) -> "MultiLayerBPP":
        """The full §3.2 pipeline: split, probe every layer, keep top-k.

        ``dataset`` is split *by generation* into probe-training and
        calibration halves; one sBPP per layer is trained and calibrated;
        the k highest-AUC layers form the mBPP.
        """
        split_rng = spawn(seed, "bpp-split")
        calib, train = dataset.split_by_group(calib_fraction, split_rng)
        all_probes: list[SingleLayerBPP] = []
        for layer in range(dataset.n_layers):
            probe = SingleLayerBPP(
                layer_index=layer,
                alpha=alpha,
                mondrian=mondrian,
                conformal_mode=conformal_mode,
                mlp_config=mlp_config,
                seed=spawn(seed, "probe", layer).integers(2**31),
            ).fit(train, calib)
            all_probes.append(probe)
        keep = rank_layers([p.auc for p in all_probes], min(k, len(all_probes)))
        mbpp = cls(
            sbpps=[all_probes[i] for i in keep],
            method=method,
            seed=seed,
        )
        mbpp.all_probes = all_probes  # retained for k/alpha sweeps
        return mbpp

    # -- introspection -------------------------------------------------------------

    @property
    def layers(self) -> list[int]:
        return [p.layer_index for p in self.sbpps]

    @property
    def aucs(self) -> list[float]:
        return [p.auc for p in self.sbpps]

    @property
    def mean_auc(self) -> float:
        finite = [a for a in self.aucs if not np.isnan(a)]
        return float(np.mean(finite)) if finite else float("nan")

    # -- inference -----------------------------------------------------------

    def prediction_sets(self, hidden_stack: np.ndarray) -> list[frozenset[int]]:
        """Per-selected-layer conformal sets for one token."""
        return [p.prediction_set(hidden_stack) for p in self.sbpps]

    def aggregate(
        self, sets: "list[frozenset[int]]", key: "tuple | str" = ""
    ) -> frozenset[int]:
        """Aggregate per-layer sets; ``key`` seeds the permutation."""
        if self.method == MAJORITY:
            return majority_vote(sets, theta=self.theta)
        rng = spawn(self.seed, "perm", key)
        return random_permutation(sets, rng)

    def is_branching(
        self, hidden_stack: np.ndarray, key: "tuple | str" = ""
    ) -> bool:
        """Declare the token a branching point iff 1 survives aggregation."""
        return 1 in self.aggregate(self.prediction_sets(hidden_stack), key)

    def predict_dataset(self, dataset: BranchDataset) -> np.ndarray:
        """Vectorized branching decisions for every token in ``dataset``.

        Uses the batched per-layer path (one MLP forward per layer) and
        aggregates per token; keys are (group, running index) so results
        match token-by-token calls.
        """
        per_layer_sets = [
            probe.prediction_sets_batch(dataset.layer(probe.layer_index))
            for probe in self.sbpps
        ]
        out = np.zeros(dataset.n_tokens, dtype=bool)
        for i in range(dataset.n_tokens):
            sets = [layer_sets[i] for layer_sets in per_layer_sets]
            out[i] = 1 in self.aggregate(sets, key=("ds", int(dataset.groups[i]), i))
        return out
