"""A two-layer perceptron binary classifier in pure numpy (§3.1).

The paper probes each hidden layer with "a two-layer perceptron (MLP)
classifier". No ML framework is available offline, so this implements the
probe directly: standardized inputs, one tanh hidden layer, sigmoid
output, Adam optimizer, class-weighted binary cross-entropy (branching
points are a few percent of tokens — unweighted training would collapse
to the majority class).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MLPConfig", "MLPClassifier"]


@dataclass(frozen=True)
class MLPConfig:
    """Probe training hyper-parameters."""

    hidden_units: int = 16
    learning_rate: float = 8e-3
    epochs: int = 80
    batch_size: int = 256
    l2: float = 1e-4
    balance_classes: bool = True

    def __post_init__(self) -> None:
        if self.hidden_units < 1 or self.epochs < 1 or self.batch_size < 1:
            raise ValueError("hidden_units, epochs and batch_size must be >= 1")


class MLPClassifier:
    """Two-layer MLP with Adam; API: ``fit``, ``predict_proba``, ``score``."""

    def __init__(self, config: "MLPConfig | None" = None, seed: int = 0):
        self.config = config or MLPConfig()
        self.seed = seed
        self._params: "dict[str, np.ndarray] | None" = None
        self._mean: "np.ndarray | None" = None
        self._std: "np.ndarray | None" = None

    # -- internals -----------------------------------------------------------

    def _forward(self, X: np.ndarray, params: dict) -> tuple[np.ndarray, np.ndarray]:
        h = np.tanh(X @ params["W1"] + params["b1"])
        logits = h @ params["W2"] + params["b2"]
        return h, logits.ravel()

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        out = np.empty_like(z)
        pos = z >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
        ez = np.exp(z[~pos])
        out[~pos] = ez / (1.0 + ez)
        return out

    # -- API -----------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        """Train on features ``X`` (n, d) and boolean/0-1 labels ``y``."""
        cfg = self.config
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError("X must be (n, d) aligned with y")
        if len(X) < 2:
            raise ValueError("need at least two training points")
        rng = np.random.default_rng(self.seed)

        self._mean = X.mean(axis=0)
        self._std = X.std(axis=0) + 1e-8
        Xs = (X - self._mean) / self._std

        n, d = Xs.shape
        h = cfg.hidden_units
        params = {
            "W1": rng.normal(0.0, 1.0 / np.sqrt(d), size=(d, h)),
            "b1": np.zeros(h),
            "W2": rng.normal(0.0, 1.0 / np.sqrt(h), size=(h, 1)),
            "b2": np.zeros(1),
        }
        if cfg.balance_classes:
            n_pos = max(1.0, y.sum())
            n_neg = max(1.0, (1.0 - y).sum())
            w_pos, w_neg = n / (2.0 * n_pos), n / (2.0 * n_neg)
        else:
            w_pos = w_neg = 1.0
        weights = np.where(y > 0.5, w_pos, w_neg)

        m = {k: np.zeros_like(v) for k, v in params.items()}
        v = {k: np.zeros_like(val) for k, val in params.items()}
        beta1, beta2, eps_adam = 0.9, 0.999, 1e-8
        t = 0
        for _epoch in range(cfg.epochs):
            order = rng.permutation(n)
            for start in range(0, n, cfg.batch_size):
                idx = order[start : start + cfg.batch_size]
                xb, yb, wb = Xs[idx], y[idx], weights[idx]
                hidden, logits = self._forward(xb, params)
                p = self._sigmoid(logits)
                # Weighted BCE gradient: dL/dlogit = w * (p - y) / batch.
                dlogit = (wb * (p - yb) / len(idx))[:, None]
                grads = {
                    "W2": hidden.T @ dlogit + cfg.l2 * params["W2"],
                    "b2": dlogit.sum(axis=0),
                }
                dh = dlogit @ params["W2"].T * (1.0 - hidden**2)
                grads["W1"] = xb.T @ dh + cfg.l2 * params["W1"]
                grads["b1"] = dh.sum(axis=0)
                t += 1
                for key in params:
                    g = grads[key]
                    m[key] = beta1 * m[key] + (1 - beta1) * g
                    v[key] = beta2 * v[key] + (1 - beta2) * g * g
                    m_hat = m[key] / (1 - beta1**t)
                    v_hat = v[key] / (1 - beta2**t)
                    params[key] -= (
                        cfg.learning_rate * m_hat / (np.sqrt(v_hat) + eps_adam)
                    )
        self._params = params
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw logits for the positive class."""
        if self._params is None:
            raise RuntimeError("call fit() before predicting")
        X = np.asarray(X, dtype=float)
        single = X.ndim == 1
        if single:
            X = X[None, :]
        Xs = (X - self._mean) / self._std
        _, logits = self._forward(Xs, self._params)
        return logits[0] if single else logits

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """``(n, 2)`` class probabilities (or ``(2,)`` for one point)."""
        logits = self.decision_function(X)
        p1 = self._sigmoid(np.atleast_1d(logits))
        out = np.stack([1.0 - p1, p1], axis=-1)
        return out[0] if np.isscalar(logits) or logits.ndim == 0 else out

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (np.atleast_2d(self.predict_proba(X))[:, 1] >= 0.5).astype(int)
