"""BPP evaluation metrics: coverage and extra abstention rate (§4.2).

* Coverage — branching points correctly detected among all true branching
  points.
* EAR — tokens flagged as branching that are not, over all tokens
  ("unnecessary abstention" pressure).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linking.dataset import BranchDataset
from repro.probes.mbpp import MultiLayerBPP

__all__ = ["BPPEvaluation", "evaluate_bpp", "coverage_and_ear"]


@dataclass(frozen=True)
class BPPEvaluation:
    """Coverage / EAR on a labelled token dataset."""

    coverage: float
    ear: float
    n_tokens: int
    n_branching: int

    def as_row(self) -> tuple[float, float]:
        return (100.0 * self.coverage, 100.0 * self.ear)


def coverage_and_ear(labels: np.ndarray, predicted: np.ndarray) -> tuple[float, float]:
    """Coverage and EAR from boolean label/prediction arrays."""
    labels = np.asarray(labels, dtype=bool).ravel()
    predicted = np.asarray(predicted, dtype=bool).ravel()
    if labels.shape != predicted.shape:
        raise ValueError("labels and predictions must align")
    n_branch = int(labels.sum())
    coverage = (
        float((predicted & labels).sum() / n_branch) if n_branch else float("nan")
    )
    ear = float((predicted & ~labels).sum() / len(labels)) if len(labels) else float("nan")
    return coverage, ear


def evaluate_bpp(mbpp: MultiLayerBPP, dataset: BranchDataset) -> BPPEvaluation:
    """Run the mBPP over every token of ``dataset`` and score it."""
    predicted = mbpp.predict_dataset(dataset)
    coverage, ear = coverage_and_ear(dataset.labels, predicted)
    return BPPEvaluation(
        coverage=coverage,
        ear=ear,
        n_tokens=dataset.n_tokens,
        n_branching=int(dataset.labels.sum()),
    )
