"""Baseline branching-point detectors the paper argues against (§3.1).

The intuitive alternative to hidden-state probing is to flag tokens whose
next-token max softmax probability is low. Figure 3a shows why this
fails for supervised fine-tuned linkers: the model is over-confident on
correct *and* erroneous tokens, so no threshold separates them. This
module implements that baseline so the claim is quantified, not just
asserted (see ``experiments.ablations``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linking.instance import SchemaLinkingInstance
from repro.llm.model import TransparentLLM
from repro.probes.metrics import BPPEvaluation, coverage_and_ear
from repro.utils.stats import auc_score

__all__ = ["LogitThresholdDetector", "collect_max_probs"]


def collect_max_probs(
    llm: TransparentLLM, instances: "list[SchemaLinkingInstance]"
) -> tuple[np.ndarray, np.ndarray]:
    """(max_probs, labels) over teacher-forced traces — the raw material
    a logit-based detector has to work with."""
    probs: list[float] = []
    labels: list[bool] = []
    for instance in instances:
        for step in llm.teacher_forced_trace(instance).steps:
            probs.append(step.max_prob)
            labels.append(step.proposed != step.committed)
    return np.asarray(probs), np.asarray(labels, dtype=bool)


@dataclass
class LogitThresholdDetector:
    """Flag a token as branching iff its max softmax prob < threshold.

    ``fit`` picks the threshold that maximizes Youden's J (TPR - FPR) on
    held-out data — the most charitable calibration the baseline can get.
    """

    threshold: float = 0.9
    auc: float = float("nan")

    def fit(self, max_probs: np.ndarray, labels: np.ndarray) -> "LogitThresholdDetector":
        max_probs = np.asarray(max_probs, dtype=float)
        labels = np.asarray(labels, dtype=bool)
        # Low probability should indicate branching: score = 1 - p.
        self.auc = auc_score(labels, 1.0 - max_probs)
        best_j, best_thr = -1.0, float(np.median(max_probs))
        for thr in np.unique(max_probs):
            predicted = max_probs < thr
            pos = labels.sum()
            neg = len(labels) - pos
            if pos == 0 or neg == 0:
                continue
            tpr = (predicted & labels).sum() / pos
            fpr = (predicted & ~labels).sum() / neg
            j = tpr - fpr
            if j > best_j:
                best_j, best_thr = j, float(thr)
        self.threshold = best_thr
        return self

    def predict(self, max_probs: np.ndarray) -> np.ndarray:
        return np.asarray(max_probs, dtype=float) < self.threshold

    def evaluate(
        self, max_probs: np.ndarray, labels: np.ndarray
    ) -> BPPEvaluation:
        predicted = self.predict(max_probs)
        labels = np.asarray(labels, dtype=bool)
        coverage, ear = coverage_and_ear(labels, predicted)
        return BPPEvaluation(
            coverage=coverage,
            ear=ear,
            n_tokens=len(labels),
            n_branching=int(labels.sum()),
        )
