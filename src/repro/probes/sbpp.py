"""Conformal Single-Layer Branching Point Predictor (sBPP, §3.2.2).

One per hidden layer: an MLP probe trained on that layer's hidden states,
wrapped in conformal calibration (split/Mondrian by default; the
non-exchangeable KNN-weighted variant on request).
"""

from __future__ import annotations


import numpy as np

from repro.conformal.nonexchangeable import NonexchangeableConformalBinary
from repro.conformal.split import SplitConformalBinary
from repro.linking.dataset import BranchDataset
from repro.probes.mlp import MLPClassifier, MLPConfig
from repro.utils.stats import auc_score

__all__ = ["SingleLayerBPP"]

SPLIT = "split"
NONEXCHANGEABLE = "nonexchangeable"


class SingleLayerBPP:
    """Probe + conformal wrapper for one hidden layer."""

    def __init__(
        self,
        layer_index: int,
        alpha: float = 0.1,
        mondrian: bool = True,
        conformal_mode: str = SPLIT,
        mlp_config: "MLPConfig | None" = None,
        seed: int = 0,
    ):
        if conformal_mode not in (SPLIT, NONEXCHANGEABLE):
            raise ValueError(f"unknown conformal mode {conformal_mode!r}")
        self.layer_index = layer_index
        self.alpha = alpha
        self.mondrian = mondrian
        self.conformal_mode = conformal_mode
        self.mlp = MLPClassifier(mlp_config, seed=seed)
        self._conformal: "SplitConformalBinary | NonexchangeableConformalBinary | None" = None
        self.auc: float = float("nan")

    def fit(self, train: BranchDataset, calib: BranchDataset) -> "SingleLayerBPP":
        """Train the probe on ``train``; calibrate and score on ``calib``."""
        X_train = train.layer(self.layer_index)
        self.mlp.fit(X_train, train.labels.astype(float))
        X_calib = calib.layer(self.layer_index)
        calib_probs = np.atleast_2d(self.mlp.predict_proba(X_calib))
        self.auc = auc_score(calib.labels, calib_probs[:, 1])
        # Kept so the conformal layer can be re-calibrated at a different
        # error level without re-training the probe (the Figure 6 sweep).
        self._calib_features = X_calib
        self._calib_probs = calib_probs
        self._calib_labels = calib.labels.astype(int)
        self._calibrate()
        return self

    def _calibrate(self) -> None:
        if self.conformal_mode == SPLIT:
            self._conformal = SplitConformalBinary(
                alpha=self.alpha, mondrian=self.mondrian
            ).fit(self._calib_probs, self._calib_labels)
        else:
            self._conformal = NonexchangeableConformalBinary(alpha=self.alpha).fit(
                self._calib_features, self._calib_probs, self._calib_labels
            )

    def with_alpha(self, alpha: float) -> "SingleLayerBPP":
        """A copy of this probe re-calibrated at a different error level."""
        import copy

        clone = copy.copy(self)
        clone.alpha = alpha
        clone._calibrate()
        return clone

    # -- inference -----------------------------------------------------------

    def probs(self, hidden_stack: np.ndarray) -> np.ndarray:
        """Class probabilities from a ``(n_layers, dim)`` hidden stack."""
        return self.mlp.predict_proba(hidden_stack[self.layer_index])

    def prediction_set(self, hidden_stack: np.ndarray) -> frozenset[int]:
        """The conformal set for one token's hidden stack."""
        if self._conformal is None:
            raise RuntimeError("call fit() before predicting")
        feature = hidden_stack[self.layer_index]
        probs = self.mlp.predict_proba(feature)
        if isinstance(self._conformal, SplitConformalBinary):
            return self._conformal.prediction_set(probs)
        return self._conformal.prediction_set(feature, probs)

    def prediction_sets_batch(self, layer_features: np.ndarray) -> list[frozenset[int]]:
        """Sets for a ``(n, dim)`` batch of this layer's features."""
        if self._conformal is None:
            raise RuntimeError("call fit() before predicting")
        probs = np.atleast_2d(self.mlp.predict_proba(layer_features))
        if isinstance(self._conformal, SplitConformalBinary):
            return self._conformal.prediction_sets(probs)
        return self._conformal.prediction_sets(layer_features, probs)
