"""Layer selection: keep the k best sBPPs by calibration AUC (§4.1,
Implementation Details: "we select the k best performing sBPP classifiers
to form the mBPP. To assess the quality of a sBPP we compute the AUC
scores over the calibration dataset").
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["rank_layers"]


def rank_layers(aucs: "Sequence[float]", k: int) -> list[int]:
    """Indices of the ``k`` layers with highest AUC (NaNs rank last).

    Ties break toward deeper layers (later probes see more refined
    representations), then by index for determinism.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    indexed = [
        ((-1.0 if math.isnan(a) else a), i) for i, a in enumerate(aucs)
    ]
    indexed.sort(key=lambda pair: (-pair[0], -pair[1]))
    return sorted(i for _a, i in indexed[:k])
