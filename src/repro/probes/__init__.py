"""Branching Point Predictors: per-layer MLP probes (sBPP) wrapped in
conformal prediction, aggregated into the multi-layer mBPP (§3.1–3.2).
"""

from repro.probes.mlp import MLPClassifier, MLPConfig
from repro.probes.sbpp import SingleLayerBPP
from repro.probes.selection import rank_layers
from repro.probes.mbpp import MultiLayerBPP
from repro.probes.metrics import BPPEvaluation, evaluate_bpp

__all__ = [
    "MLPClassifier",
    "MLPConfig",
    "SingleLayerBPP",
    "rank_layers",
    "MultiLayerBPP",
    "BPPEvaluation",
    "evaluate_bpp",
]
