"""Result-set comparison implementing the execution-accuracy convention.

Following the Spider/BIRD evaluation protocol: two results match when they
contain the same multiset of rows; row order matters only when the gold
query carries an ORDER BY. Floats are compared with a small tolerance
(SQLite AVG of INTEGERs yields floats).
"""

from __future__ import annotations

from collections import Counter

from repro.sqlengine.executor import ExecutionResult

__all__ = ["results_match", "normalize_row"]

_FLOAT_TOL = 1e-6


def normalize_row(row: tuple) -> tuple:
    """Normalize a row for comparison: round floats, unify int/float."""
    out = []
    for v in row:
        if isinstance(v, bool):
            out.append(int(v))
        elif isinstance(v, float):
            if v == int(v):
                out.append(int(v))
            else:
                out.append(round(v, 6))
        else:
            out.append(v)
    return tuple(out)


def _rows_equal(a: tuple, b: tuple) -> bool:
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if isinstance(x, float) or isinstance(y, float):
            try:
                if abs(float(x) - float(y)) > _FLOAT_TOL:
                    return False
            except (TypeError, ValueError):
                return False
        elif x != y:
            return False
    return True


def results_match(
    gold: ExecutionResult, predicted: ExecutionResult, ordered: bool
) -> bool:
    """Whether a predicted result matches the gold result.

    A failed gold execution never matches (the benchmark guarantees gold
    queries execute; treating it as non-match keeps the metric sound if a
    caller feeds a malformed gold query).
    """
    if not gold.ok or not predicted.ok:
        return False
    gold_rows = [normalize_row(r) for r in gold.rows]
    pred_rows = [normalize_row(r) for r in predicted.rows]
    if len(gold_rows) != len(pred_rows):
        return False
    if ordered:
        return all(_rows_equal(g, p) for g, p in zip(gold_rows, pred_rows))
    return Counter(gold_rows) == Counter(pred_rows)
