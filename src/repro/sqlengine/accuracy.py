"""Execution accuracy (EX) evaluation harness.

EX is the paper's downstream metric (§4.2, "Evaluating Text-to-SQL"):
the fraction of examples whose predicted SQL, executed on the database,
returns the same results as the gold SQL.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus.dataset import Example
from repro.corpus.generator import PopulatedDatabase
from repro.sqlengine.comparator import results_match
from repro.sqlengine.executor import Executor

__all__ = ["ExampleOutcome", "ExecutionReport", "ExecutionEvaluator"]


@dataclass(frozen=True)
class ExampleOutcome:
    """Per-example execution comparison outcome."""

    example_id: str
    correct: bool
    predicted_sql: str
    gold_sql: str
    predicted_error: "str | None" = None


@dataclass
class ExecutionReport:
    """Aggregate EX over a split."""

    outcomes: list[ExampleOutcome] = field(default_factory=list)

    @property
    def n(self) -> int:
        return len(self.outcomes)

    @property
    def n_correct(self) -> int:
        return sum(1 for o in self.outcomes if o.correct)

    @property
    def execution_accuracy(self) -> float:
        """EX in percent, matching the paper's tables."""
        if not self.outcomes:
            return float("nan")
        return 100.0 * self.n_correct / self.n

    @property
    def n_errors(self) -> int:
        return sum(1 for o in self.outcomes if o.predicted_error is not None)


class ExecutionEvaluator:
    """Evaluates predicted SQL strings against gold queries by execution."""

    def __init__(self, databases: dict[str, PopulatedDatabase]):
        self._executor = Executor(databases)

    def evaluate_one(self, example: Example, predicted_sql: str) -> ExampleOutcome:
        gold = self._executor.execute(example.db_id, example.gold_sql)
        pred = self._executor.execute(example.db_id, predicted_sql)
        ok = results_match(gold, pred, ordered=example.query.has_order)
        return ExampleOutcome(
            example_id=example.example_id,
            correct=ok,
            predicted_sql=predicted_sql,
            gold_sql=example.gold_sql,
            predicted_error=pred.error,
        )

    def evaluate(
        self, pairs: "list[tuple[Example, str]]"
    ) -> ExecutionReport:
        """Evaluate many (example, predicted SQL) pairs."""
        report = ExecutionReport()
        for example, sql in pairs:
            report.outcomes.append(self.evaluate_one(example, sql))
        return report

    def close(self) -> None:
        self._executor.close()
