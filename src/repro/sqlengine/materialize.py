"""Materialize a populated database into a live SQLite connection."""

from __future__ import annotations

import sqlite3

from repro.corpus.generator import PopulatedDatabase
from repro.schema.ddl import render_create_table

__all__ = ["materialize"]


def materialize(pdb: PopulatedDatabase) -> sqlite3.Connection:
    """Create an in-memory SQLite database with schema and rows.

    Foreign keys are declared but not enforced during load (generated rows
    are FK-consistent by construction except for rare NULL placeholders,
    which SQLite's FK checker would also accept).
    """
    conn = sqlite3.connect(":memory:")
    conn.execute("PRAGMA foreign_keys = OFF")
    for table in pdb.schema.tables:
        conn.execute(render_create_table(table))
        rows = pdb.rows.get(table.name, [])
        if not rows:
            continue
        width = len(table.columns)
        placeholders = ", ".join(["?"] * width)
        quoted = ", ".join(f'"{c.name}"' for c in table.columns)
        conn.executemany(
            f'INSERT INTO "{table.name}" ({quoted}) VALUES ({placeholders})', rows
        )
    conn.commit()
    return conn
