"""Safe SQL execution with error capture and per-database connection cache."""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass

from repro.corpus.generator import PopulatedDatabase
from repro.sqlengine.materialize import materialize

__all__ = ["ExecutionResult", "Executor"]


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of executing one SQL statement."""

    ok: bool
    rows: tuple[tuple, ...] = ()
    error: "str | None" = None

    def __post_init__(self) -> None:
        if self.ok and self.error is not None:
            raise ValueError("successful results carry no error")


class Executor:
    """Executes queries against materialized benchmark databases.

    Connections are created lazily and cached per database, so evaluating
    a whole dev split touches each schema's DDL once.
    """

    def __init__(self, databases: dict[str, PopulatedDatabase]):
        self._databases = databases
        self._connections: dict[str, sqlite3.Connection] = {}

    def connection(self, db_id: str) -> sqlite3.Connection:
        if db_id not in self._connections:
            if db_id not in self._databases:
                raise KeyError(f"unknown database {db_id!r}")
            self._connections[db_id] = materialize(self._databases[db_id])
        return self._connections[db_id]

    def execute(self, db_id: str, sql: str) -> ExecutionResult:
        """Run ``sql`` read-only; capture any error as a failed result."""
        try:
            cursor = self.connection(db_id).execute(sql)
            rows = tuple(tuple(r) for r in cursor.fetchall())
            return ExecutionResult(ok=True, rows=rows)
        except sqlite3.Error as exc:
            return ExecutionResult(ok=False, error=str(exc))

    def close(self) -> None:
        for conn in self._connections.values():
            conn.close()
        self._connections.clear()

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
