"""SQLite execution substrate.

Materializes generated databases into real SQLite, executes gold and
predicted SQL, and compares result sets — execution accuracy (EX) is
*measured*, never simulated.
"""

from repro.sqlengine.materialize import materialize
from repro.sqlengine.executor import ExecutionResult, Executor
from repro.sqlengine.comparator import results_match
from repro.sqlengine.accuracy import ExecutionEvaluator

__all__ = [
    "materialize",
    "ExecutionResult",
    "Executor",
    "results_match",
    "ExecutionEvaluator",
]
