"""The RTS framework: configuration, outcomes, and the end-to-end pipeline."""

from repro.core.config import RTSConfig
from repro.core.results import AbstentionReport, JointOutcome, LinkOutcome, build_report
from repro.core.pipeline import RTSPipeline

__all__ = [
    "RTSConfig",
    "AbstentionReport",
    "JointOutcome",
    "LinkOutcome",
    "build_report",
    "RTSPipeline",
]
