"""RTS pipeline configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.probes.mlp import MLPConfig

__all__ = ["RTSConfig", "ABSTAIN", "SURROGATE", "HUMAN"]

ABSTAIN = "abstain"
SURROGATE = "surrogate"
HUMAN = "human"

MITIGATION_MODES = (ABSTAIN, SURROGATE, HUMAN)


@dataclass(frozen=True)
class RTSConfig:
    """Knobs of the RTS pipeline (paper §4.1, Implementation Details).

    Defaults follow the paper: error level ``alpha = 0.1``, ``k = 5``
    best sBPPs, random-permutation aggregation, split conformal with
    Mondrian (class-conditional) calibration — see DESIGN.md §5 for why
    Mondrian is the default.

    ``train_fraction`` is the share of the training split used to build
    D_branch ("approximately 10% of the training set" at the paper's
    scale; 1.0 by default here because the scaled-down corpora are ~10x
    smaller to begin with).
    """

    alpha: float = 0.1
    k: int = 5
    theta: float = 0.5
    aggregation: str = "permutation"  # or "majority"
    mondrian: bool = True
    conformal_mode: str = "split"  # or "nonexchangeable"
    calib_fraction: float = 0.5
    train_fraction: float = 1.0
    seed: int = 0
    mlp: "MLPConfig | None" = None

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if not 0.0 < self.calib_fraction < 1.0:
            raise ValueError("calib_fraction must be in (0, 1)")
        if not 0.0 < self.train_fraction <= 1.0:
            raise ValueError("train_fraction must be in (0, 1]")
        if self.aggregation not in ("permutation", "majority"):
            raise ValueError(f"unknown aggregation {self.aggregation!r}")
