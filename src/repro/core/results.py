"""RTS outcome types and the TAR / FAR / EM accounting (§4.2).

The paper's prose defines (our implementation follows the prose; the
displayed formulas are swapped relative to it — DESIGN.md §5):

* TAR — abstentions that *correctly* capture instances the model would
  have gotten wrong;
* FAR — abstentions on instances the model would have answered
  correctly (unnecessary abstention);
* EM — exact set match over the instances the model answered.

In human-feedback mode the generation always completes; "abstain" there
means "solicited the human at least once", matching Table 6's protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.linking.instance import SchemaLinkingInstance
from repro.linking.metrics import evaluate_linking

__all__ = ["LinkOutcome", "JointOutcome", "AbstentionReport", "build_report"]


@dataclass
class LinkOutcome:
    """RTS outcome for one linking instance."""

    instance: SchemaLinkingInstance
    predicted: "tuple[str, ...] | None"  # None = abstained outright
    unassisted: tuple[str, ...]  # what free generation would have produced
    abstained: bool
    flags: int  # branching detections
    interventions: int  # human corrections applied
    questions_asked: int = 0
    swaps: "list[tuple[str, str]]" = field(default_factory=list)

    @property
    def signalled(self) -> bool:
        """Whether RTS raised its hand (abstained or consulted a human)."""
        return self.abstained or self.questions_asked > 0

    @property
    def unassisted_correct(self) -> bool:
        return {i.lower() for i in self.unassisted} == {
            i.lower() for i in self.instance.gold_items
        }

    @property
    def answered(self) -> bool:
        return self.predicted is not None

    @property
    def correct(self) -> bool:
        if self.predicted is None:
            return False
        return {i.lower() for i in self.predicted} == {
            i.lower() for i in self.instance.gold_items
        }


@dataclass
class JointOutcome:
    """RTS outcome for the joint table->column pipeline on one example."""

    example_id: str
    tables: "tuple[str, ...] | None"
    columns: "tuple[str, ...] | None"  # qualified table.column items
    gold_tables: tuple[str, ...]
    gold_columns: tuple[str, ...]
    abstained: bool
    signalled: bool
    unassisted_tables_correct: bool
    unassisted_columns_correct: bool

    @property
    def tables_correct(self) -> bool:
        if self.tables is None:
            return False
        return {t.lower() for t in self.tables} == {
            t.lower() for t in self.gold_tables
        }

    @property
    def columns_correct(self) -> bool:
        if self.columns is None:
            return False
        return {c.lower() for c in self.columns} == {
            c.lower() for c in self.gold_columns
        }

    @property
    def unassisted_correct(self) -> bool:
        return self.unassisted_tables_correct and self.unassisted_columns_correct


@dataclass(frozen=True)
class AbstentionReport:
    """Aggregate EM / TAR / FAR over a collection of outcomes."""

    em: float
    tar: float
    far: float
    n: int
    n_answered: int
    precision: float = float("nan")
    recall: float = float("nan")

    @property
    def abstention_rate(self) -> float:
        return self.tar + self.far

    def as_row(self) -> tuple[float, float, float]:
        """Percent-scaled (EM, TAR, FAR) — Tables 5/6 layout."""
        return (100.0 * self.em, 100.0 * self.tar, 100.0 * self.far)


def build_report(outcomes: "list[LinkOutcome]") -> AbstentionReport:
    """TAR / FAR / EM accounting over per-instance outcomes."""
    if not outcomes:
        return AbstentionReport(float("nan"), float("nan"), float("nan"), 0, 0)
    n = len(outcomes)
    tar = sum(1 for o in outcomes if o.signalled and not o.unassisted_correct) / n
    far = sum(1 for o in outcomes if o.signalled and o.unassisted_correct) / n
    answered = [o for o in outcomes if o.answered]
    if answered:
        em = sum(1 for o in answered if o.correct) / len(answered)
        metrics = evaluate_linking(
            [(o.instance.gold_items, o.predicted) for o in answered]
        )
        precision, recall = metrics.precision, metrics.recall
    else:
        em, precision, recall = float("nan"), float("nan"), float("nan")
    return AbstentionReport(
        em=em,
        tar=tar,
        far=far,
        n=n,
        n_answered=len(answered),
        precision=precision,
        recall=recall,
    )
