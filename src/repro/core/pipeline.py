"""The end-to-end RTS pipeline (§3).

Training: collect D_branch over the training split by teacher forcing,
train and calibrate one mBPP per task (table / column linking).

Inference: generate token by token; every proposal's hidden states pass
through the mBPP. On a detected branching point the pipeline either

* **abstains** (mBPP-Abstention, Table 5 row 1),
* consults the **surrogate filter** — halting only if it confirms the
  traced-back items are irrelevant (Table 5 row 2), or
* solicits a **human** — confirm the traced-back item and continue, or
  take the corrected item and teacher-force back onto the gold path
  (Table 6). Human misjudgments propagate: a wrong confirmation lets an
  erroneous item through, and a wrong rejection swaps a correct item for
  the human's (wrong) suggestion.
"""

from __future__ import annotations

from repro.abstention.human import HumanOracle
from repro.abstention.surrogate import SurrogateFilter
from repro.abstention.traceback import trace_back
from repro.corpus.dataset import Benchmark, Example
from repro.core.config import ABSTAIN, HUMAN, MITIGATION_MODES, RTSConfig, SURROGATE
from repro.core.results import JointOutcome, LinkOutcome
from repro.linking.dataset import BranchDataset, collect_branch_dataset
from repro.linking.instance import (
    COLUMN_TASK,
    SchemaLinkingInstance,
    TABLE_TASK,
)
from repro.llm.errors import _pick_distractor
from repro.llm.model import TransparentLLM
from repro.llm.tokenizer import tokenize_items
from repro.probes.mbpp import MultiLayerBPP
from repro.utils.rng import spawn

__all__ = ["RTSPipeline"]


class RTSPipeline:
    """Reliable Text-to-SQL schema linking with adaptive abstention."""

    def __init__(self, llm: TransparentLLM, config: "RTSConfig | None" = None):
        self.llm = llm
        self.config = config or RTSConfig()
        self._mbpps: dict[str, MultiLayerBPP] = {}
        self._branch_datasets: dict[str, BranchDataset] = {}

    # -- training -------------------------------------------------------------

    def fit_task(
        self, task: str, instances: "list[SchemaLinkingInstance]", pool=None
    ) -> "RTSPipeline":
        """Collect D_branch for ``task`` and train its mBPP.

        An explicitly passed parallel ``pool`` (anything with an
        order-preserving ``map_ordered``) always wins: per-instance
        calls fan over it, and a caching LLM still serves each from its
        service. Otherwise a service-backed LLM gets the whole batch in
        one call (which the async backend coalesces into microbatches).
        Training itself is serial; both paths yield bit-identical
        traces in input order.
        """
        cfg = self.config
        if cfg.train_fraction < 1.0:
            rng = spawn(cfg.seed, "train-fraction", task)
            n_keep = max(2, int(round(cfg.train_fraction * len(instances))))
            idx = rng.permutation(len(instances))[:n_keep]
            instances = [instances[int(i)] for i in sorted(idx)]
        collect = getattr(self.llm, "teacher_forced_traces", None)
        if pool is not None and not getattr(pool, "is_serial", False):
            traces = pool.map_ordered(self.llm.teacher_forced_trace, instances)
        elif callable(collect):
            traces = collect(instances)
        elif pool is not None:
            traces = pool.map_ordered(self.llm.teacher_forced_trace, instances)
        else:
            traces = None
        dataset = collect_branch_dataset(self.llm, instances, traces=traces)
        self._branch_datasets[task] = dataset
        self._mbpps[task] = MultiLayerBPP.train(
            dataset,
            alpha=cfg.alpha,
            k=cfg.k,
            calib_fraction=cfg.calib_fraction,
            mondrian=cfg.mondrian,
            conformal_mode=cfg.conformal_mode,
            method=cfg.aggregation,
            mlp_config=cfg.mlp,
            seed=spawn(cfg.seed, "mbpp", task).integers(2**31),
        )
        return self

    def fit_benchmark(
        self,
        benchmark: Benchmark,
        tasks: "tuple[str, ...]" = (TABLE_TASK, COLUMN_TASK),
        pool=None,
    ) -> "RTSPipeline":
        """Convenience: fit per-task mBPPs from a benchmark's train split."""
        for task in tasks:
            instances = [
                self.instance_for(example, benchmark, task)
                for example in benchmark.train
            ]
            self.fit_task(task, instances, pool=pool)
        return self

    def identity_parts(self) -> tuple:
        """Everything outcome-affecting about this pipeline besides inputs.

        Embedded in artifact resume keys and sweep fingerprints so
        records computed under a differently seeded LLM or RTS config
        are never silently reused across runs.
        """
        return (getattr(self.llm, "seed", None), self.config.seed)

    def batch(self, workers: int = 1, backend: str = "thread", artifact=None):
        """A :class:`~repro.runtime.runner.BatchRunner` over this pipeline.

        All bulk evaluation (experiment tables, figures, sweeps, the
        ``repro-run`` / ``repro-sweep`` CLIs) goes through the returned
        runner rather than hand-rolled per-example loops.
        """
        from repro.runtime.runner import BatchRunner  # local: avoids cycle

        return BatchRunner(self, workers=workers, backend=backend, artifact=artifact)

    @staticmethod
    def instance_for(
        example: Example, benchmark: Benchmark, task: str
    ) -> SchemaLinkingInstance:
        db = benchmark.database(example.db_id).schema
        if task == TABLE_TASK:
            return SchemaLinkingInstance.for_tables(example, db)
        return SchemaLinkingInstance.for_columns(example, db)

    def mbpp(self, task: str) -> MultiLayerBPP:
        try:
            return self._mbpps[task]
        except KeyError:
            raise RuntimeError(f"pipeline not fitted for task {task!r}") from None

    def branch_dataset(self, task: str) -> BranchDataset:
        try:
            return self._branch_datasets[task]
        except KeyError:
            raise RuntimeError(f"pipeline not fitted for task {task!r}") from None

    # -- inference -----------------------------------------------------------

    def link(
        self,
        instance: SchemaLinkingInstance,
        mode: str = ABSTAIN,
        surrogate: "SurrogateFilter | None" = None,
        human: "HumanOracle | None" = None,
    ) -> LinkOutcome:
        """Link one instance under the chosen mitigation mode."""
        if mode not in MITIGATION_MODES:
            raise ValueError(f"unknown mitigation mode {mode!r}")
        if mode == SURROGATE and surrogate is None:
            raise ValueError("surrogate mode needs a SurrogateFilter")
        if mode == HUMAN and human is None:
            raise ValueError("human mode needs a HumanOracle")
        mbpp = self.mbpp(instance.task)
        unassisted = self.llm.generate(instance).items
        session = self.llm.start_session(instance)
        gold_stream = tokenize_items(instance.gold_items)
        gold_set = {g.lower() for g in instance.gold_items}
        flags = interventions = questions = 0
        swaps: list[tuple[str, str]] = []

        while not session.done:
            step = session.propose()
            flagged = mbpp.is_branching(
                step.hidden, key=(instance.instance_id, step.position)
            )
            if not flagged:
                session.commit()
                continue
            flags += 1
            if mode == ABSTAIN:
                session.abort()
                break
            if mode == SURROGATE:
                result = trace_back(session)
                if surrogate.judge(instance, result.items):
                    session.commit()  # surrogate vetoed the abstention
                    continue
                session.abort()
                break
            # HUMAN mode: Algorithm 2 -> targeted question -> repair.
            result = trace_back(session)
            questions += 1
            says_relevant = human.confirm_relevance(instance, result.items, questions)
            if says_relevant:
                session.commit()
                continue
            truly_relevant = bool(result.items) and all(
                item.lower() in gold_set for item in result.items
            )
            interventions += 1
            if truly_relevant:
                # Misjudged rejection of a correct item: the human's
                # replacement suggestion is wrong — apply it to the final
                # prediction set, but let generation continue.
                wrong = _pick_distractor(
                    instance,
                    result.items[0],
                    set(swaps_taken(swaps)),
                    spawn(self.config.seed, "human-wrong", instance.instance_id, questions),
                )
                if wrong is not None:
                    swaps.append((result.items[0], wrong))
                session.commit()
                continue
            if session.aligned and session.n_committed < len(gold_stream):
                session.force_token(gold_stream[session.n_committed])
                continue
            session.commit()  # already off the gold path; nothing to repair

        if session.aborted:
            predicted: "tuple[str, ...] | None" = None
        else:
            items = list(session.trace().items)
            for correct_item, wrong_item in swaps:
                items = [wrong_item if i == correct_item else i for i in items]
            predicted = tuple(items)
        return LinkOutcome(
            instance=instance,
            predicted=predicted,
            unassisted=unassisted,
            abstained=session.aborted,
            flags=flags,
            interventions=interventions,
            questions_asked=questions,
            swaps=swaps,
        )

    # -- joint table -> column pipeline ----------------------------------------

    def link_joint(
        self,
        example: Example,
        benchmark: Benchmark,
        mode: str = HUMAN,
        surrogate: "SurrogateFilter | None" = None,
        human: "HumanOracle | None" = None,
    ) -> JointOutcome:
        """Tables first, then columns restricted to the predicted tables."""
        db = benchmark.database(example.db_id).schema
        gold_columns = tuple(
            f"{t}.{c}" for t, cols in example.gold_columns.items() for c in cols
        )
        table_instance = SchemaLinkingInstance.for_tables(example, db)
        table_outcome = self.link(table_instance, mode, surrogate, human)

        # Unassisted joint baseline for TAR/FAR accounting.
        free_tables = table_outcome.unassisted
        free_column_instance = SchemaLinkingInstance.for_columns(
            example, db, restrict_tables=free_tables
        )
        free_columns = self.llm.generate(free_column_instance).items
        unassisted_tables_ok = table_outcome.unassisted_correct
        unassisted_columns_ok = {c.lower() for c in free_columns} == {
            c.lower() for c in gold_columns
        }

        if table_outcome.abstained or table_outcome.predicted is None:
            return JointOutcome(
                example_id=example.example_id,
                tables=None,
                columns=None,
                gold_tables=example.gold_tables,
                gold_columns=gold_columns,
                abstained=True,
                signalled=True,
                unassisted_tables_correct=unassisted_tables_ok,
                unassisted_columns_correct=unassisted_columns_ok,
            )
        column_instance = SchemaLinkingInstance.for_columns(
            example, db, restrict_tables=table_outcome.predicted
        )
        column_outcome = self.link(column_instance, mode, surrogate, human)
        abstained = column_outcome.abstained
        return JointOutcome(
            example_id=example.example_id,
            tables=table_outcome.predicted,
            columns=column_outcome.predicted,
            gold_tables=example.gold_tables,
            gold_columns=gold_columns,
            abstained=abstained,
            signalled=table_outcome.signalled or column_outcome.signalled,
            unassisted_tables_correct=unassisted_tables_ok,
            unassisted_columns_correct=unassisted_columns_ok,
        )


def swaps_taken(swaps: "list[tuple[str, str]]") -> set[str]:
    """Items already used as human-suggested replacements."""
    return {wrong for _correct, wrong in swaps}
