"""The simulated text-to-SQL generator."""

from __future__ import annotations

from repro.corpus.dataset import Example
from repro.schema.database import Database
from repro.sqlgen.corruption import corrupt_query
from repro.sqlgen.profiles import ModelProfile
from repro.utils.rng import spawn

__all__ = ["SqlGenerator"]


class SqlGenerator:
    """Generates SQL for an example given a (possibly pruned) schema.

    The generator emits the gold query when (a) every gold table and
    column is present in the provided schema and (b) the profile's
    calibrated capacity draw succeeds; otherwise it emits a realistic
    corruption (see :mod:`repro.sqlgen.corruption`). All draws are
    deterministic per (seed, example).
    """

    def __init__(self, profile: ModelProfile, seed: int = 0):
        self.profile = profile
        self.seed = seed

    # -- schema adequacy ---------------------------------------------------

    @staticmethod
    def schema_covers_gold(example: Example, provided: Database) -> bool:
        """Whether the provided schema contains every gold table/column."""
        provided_tables = {t.name.lower() for t in provided.tables}
        for t in example.gold_tables:
            if t.lower() not in provided_tables:
                return False
        for t, cols in example.gold_columns.items():
            table = provided.table(t)
            for c in cols:
                if not table.has_column(c):
                    return False
        return True

    @staticmethod
    def extra_columns(example: Example, provided: Database) -> int:
        """Distractor columns: provided columns that are not gold."""
        gold = {
            (t.lower(), c.lower())
            for t, cols in example.gold_columns.items()
            for c in cols
        }
        total = sum(len(t.columns) for t in provided.tables)
        return max(0, total - len(gold))

    # -- generation ---------------------------------------------------------

    def success_probability(self, example: Example, provided: Database) -> float:
        if not self.schema_covers_gold(example, provided):
            return 0.0
        return self.profile.success_probability(
            example, self.extra_columns(example, provided)
        )

    def generate(self, example: Example, provided: Database) -> str:
        """SQL text for ``example`` written against ``provided``."""
        rng = spawn(self.seed, "sqlgen", self.profile.name, example.example_id)
        p = self.success_probability(example, provided)
        if rng.random() < p:
            return example.gold_sql
        return corrupt_query(example.query, provided, rng).render()
