"""SQL-generator model profiles.

Each profile fixes the capacity curve of one simulated fine-tuned
generator. The success probability for an example is

``sigmoid(capacity - hardness - distraction)``

where hardness comes from the example's difficulty tier and features
(dirty identifiers in predicates, external knowledge, wide queries), and
distraction grows with the number of non-gold columns in the provided
schema (the Table 1 "full schema" penalty). Missing gold tables or
columns in the provided schema bypass the draw entirely: generation
cannot be correct (the model cannot reference what it was not given).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.corpus.dataset import Example

__all__ = ["ModelProfile", "DEEPSEEK_7B", "CODES_15B", "CHESS"]

_DIFFICULTY_HARDNESS = {"simple": 0.0, "moderate": 0.9, "challenging": 1.9}


@dataclass(frozen=True)
class ModelProfile:
    """Capacity parameters of one simulated text-to-SQL model."""

    name: str
    capacity: float
    distraction_weight: float = 0.55
    dirty_weight: float = 2.0
    knowledge_weight: float = 1.3
    width_weight: float = 0.10  # per gold column beyond two

    def hardness(self, example: Example) -> float:
        """Example hardness in logit units (schema-independent part)."""
        f = example.features
        return (
            _DIFFICULTY_HARDNESS[example.difficulty]
            + self.dirty_weight * f.dirty_gap
            + self.knowledge_weight * float(f.needs_knowledge)
            + self.width_weight * max(0, f.n_gold_columns - 2)
        )

    def distraction(self, n_extra_columns: int) -> float:
        """Penalty for distractor columns in the provided schema."""
        return self.distraction_weight * math.log1p(max(0, n_extra_columns) / 4.0)

    def success_probability(self, example: Example, n_extra_columns: int) -> float:
        logit = self.capacity - self.hardness(example) - self.distraction(n_extra_columns)
        return 1.0 / (1.0 + math.exp(-logit))


# Calibrated so golden-schema EX lands near Table 7 (Deepseek-7B: 66.2
# BIRD / 90.1 Spider; CodeS-15B: 66.3 / 90.0) and Table 1's CHESS
# pipeline near 72.4 golden / 64.5 full on BIRD.
DEEPSEEK_7B = ModelProfile(name="deepseek-7b", capacity=3.0)
CODES_15B = ModelProfile(name="codes-15b", capacity=3.0)
CHESS = ModelProfile(name="chess", capacity=3.15, distraction_weight=0.25)
