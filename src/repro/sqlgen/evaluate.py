"""End-to-end text-to-SQL evaluation: schema provider -> generator -> EX.

A *schema provider* maps an example to the schema handed to the
generator: the golden subset (Table 1/7 upper bound), the full database
(the no-linking baseline), or the RTS-linked subset (Table 7's
RTS-Schema rows).
"""

from __future__ import annotations

from typing import Callable

from repro.corpus.dataset import Benchmark, Example
from repro.schema.database import Database
from repro.sqlengine.accuracy import ExecutionEvaluator, ExecutionReport
from repro.sqlgen.generator import SqlGenerator
from repro.sqlgen.profiles import ModelProfile

__all__ = ["SchemaProvider", "golden_schema", "full_schema", "rts_schema_provider", "evaluate_text2sql"]

SchemaProvider = Callable[[Example, Database], Database]


def golden_schema(example: Example, db: Database) -> Database:
    """Only the gold tables and columns (plus primary keys)."""
    return db.subset(
        list(example.gold_tables),
        {t: list(cols) for t, cols in example.gold_columns.items()},
    )


def full_schema(example: Example, db: Database) -> Database:
    """The entire database schema (no linking)."""
    return db


def rts_schema_provider(
    joint_outcomes: dict,
) -> SchemaProvider:
    """Schema provider backed by RTS joint linking outcomes.

    ``joint_outcomes`` maps example_id -> JointOutcome. Abstained
    examples fall back to the full schema (the deployment-sensible
    default: hand the generator everything rather than nothing).
    """

    def provide(example: Example, db: Database) -> Database:
        outcome = joint_outcomes.get(example.example_id)
        if outcome is None or outcome.tables is None:
            return db
        columns: dict[str, list[str]] = {}
        for item in outcome.columns or ():
            table, _, column = item.partition(".")
            columns.setdefault(table, []).append(column)
        return db.subset(list(outcome.tables), columns)

    return provide


def _generate_one(generator: SqlGenerator, work: "tuple[Example, Database]") -> str:
    example, provided = work
    return generator.generate(example, provided)


def evaluate_text2sql(
    benchmark: Benchmark,
    split: str,
    provider: SchemaProvider,
    profile: ModelProfile,
    seed: int = 0,
    limit: "int | None" = None,
    pool=None,
) -> ExecutionReport:
    """Generate SQL for every example of a split and measure EX.

    ``pool`` optionally fans generation out over a
    :class:`~repro.runtime.pool.WorkerPool` (generation is deterministic
    per example, so results are order-independent); SQL execution stays
    serial because sqlite connections are not shareable across threads.
    """
    generator = SqlGenerator(profile, seed=seed)
    evaluator = ExecutionEvaluator(benchmark.databases)
    examples = list(benchmark.split(split))
    if limit is not None:
        examples = examples[:limit]
    work = [
        (example, provider(example, benchmark.database(example.db_id).schema))
        for example in examples
    ]
    if pool is not None:
        from functools import partial

        queries = pool.map_ordered(partial(_generate_one, generator), work)
    else:
        queries = [_generate_one(generator, item) for item in work]
    pairs = list(zip(examples, queries))
    report = evaluator.evaluate(pairs)
    evaluator.close()
    return report
