"""Downstream text-to-SQL generation (§4, Tables 1 and 7).

Simulated fine-tuned SQL generators (Deepseek-7B, CodeS-15B, and the
CHESS pipeline of Table 1) whose success probability depends on the
*quality of the provided schema* — missing gold tables/columns make a
correct query impossible; distractor columns cost accuracy — and whose
failures are realistic AST-level corruptions executed against real
SQLite. Execution accuracy is measured, never asserted.
"""

from repro.sqlgen.profiles import CHESS, CODES_15B, DEEPSEEK_7B, ModelProfile
from repro.sqlgen.corruption import corrupt_query
from repro.sqlgen.generator import SqlGenerator
from repro.sqlgen.evaluate import SchemaProvider, evaluate_text2sql, full_schema, golden_schema

__all__ = [
    "ModelProfile",
    "DEEPSEEK_7B",
    "CODES_15B",
    "CHESS",
    "corrupt_query",
    "SqlGenerator",
    "SchemaProvider",
    "evaluate_text2sql",
    "golden_schema",
    "full_schema",
]
