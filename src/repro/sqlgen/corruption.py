"""Realistic AST-level corruptions of SQL queries.

When the simulated generator fails, it does not emit garbage — it emits a
*plausible wrong query*: a neighbouring column, a perturbed literal, the
wrong aggregate, a dropped predicate, a reversed sort. The corrupted
query is then actually executed; execution accuracy emerges from result
comparison (occasionally a corruption is semantically harmless and still
matches — exactly the noise real EX evaluation has).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.corpus.sqlast import (
    ColumnRef,
    SelectItem,
    SelectQuery,
    Subquery,
)
from repro.schema.database import Database

__all__ = ["corrupt_query"]

_AGG_SWAP = {"AVG": "SUM", "SUM": "AVG", "MAX": "MIN", "MIN": "MAX", "COUNT": "SUM"}


def _compatible_columns(db: Database, ref: ColumnRef) -> list[ColumnRef]:
    """Same-table columns with the same broad type (numeric vs text)."""
    try:
        table = db.table(ref.table)
        original = table.column(ref.column)
    except KeyError:
        return []
    out = []
    for col in table.columns:
        if col.name.lower() == ref.column.lower():
            continue
        if col.ctype.is_numeric == original.ctype.is_numeric:
            out.append(ColumnRef(table.name, col.name))
    return out


def _swap_column(query: SelectQuery, db: Database, rng: np.random.Generator) -> "SelectQuery | None":
    # Sorted before shuffling: set iteration order is hash-seed dependent
    # and corruption must be a pure function of (query, schema, rng).
    refs = sorted({(r.table, r.column) for r in query.iter_column_refs()})
    rng.shuffle(refs)
    for table, column in refs:
        ref = ColumnRef(table, column)
        options = _compatible_columns(db, ref)
        if options:
            pick = options[int(rng.integers(0, len(options)))]
            return query.replace_column(ref, pick)
    return None


def _perturb_literal(query: SelectQuery, rng: np.random.Generator) -> "SelectQuery | None":
    for i, cond in enumerate(query.where):
        if isinstance(cond.value, Subquery):
            continue
        if isinstance(cond.value, (int, float)) and not isinstance(cond.value, bool):
            delta = max(1, abs(cond.value) * 0.25)
            new_value = type(cond.value)(cond.value + delta * (1 if rng.random() < 0.5 else -1))
            new_where = list(query.where)
            new_where[i] = replace(cond, value=new_value)
            return replace(query, where=tuple(new_where))
        if isinstance(cond.value, str):
            new_where = list(query.where)
            new_where[i] = replace(cond, value=cond.value + "s")
            return replace(query, where=tuple(new_where))
    return None


def _swap_aggregate(query: SelectQuery, rng: np.random.Generator) -> "SelectQuery | None":
    for i, item in enumerate(query.select):
        if item.agg and item.agg in _AGG_SWAP and item.col is not None:
            new_select = list(query.select)
            new_select[i] = replace(item, agg=_AGG_SWAP[item.agg])
            return replace(query, select=tuple(new_select))
    return None


def _drop_condition(query: SelectQuery, rng: np.random.Generator) -> "SelectQuery | None":
    if len(query.where) >= 1:
        keep = list(query.where)
        keep.pop(int(rng.integers(0, len(keep))))
        return replace(query, where=tuple(keep))
    return None


def _flip_order(query: SelectQuery, rng: np.random.Generator) -> "SelectQuery | None":
    if not query.order_by:
        return None
    term = query.order_by[0]
    flipped = replace(
        term, direction="ASC" if term.direction == "DESC" else "DESC"
    )
    return replace(query, order_by=(flipped,) + query.order_by[1:])


def _fallback_query(db: Database, rng: np.random.Generator) -> SelectQuery:
    """A syntactically valid but wrong query over whatever schema exists."""
    table = db.tables[int(rng.integers(0, len(db.tables)))]
    col = table.columns[int(rng.integers(0, len(table.columns)))]
    return SelectQuery(
        select=(SelectItem(col=ColumnRef(table.name, col.name)),),
        tables=(table.name,),
    )


def corrupt_query(
    query: SelectQuery, provided: Database, rng: np.random.Generator
) -> SelectQuery:
    """Produce a plausible wrong variant of ``query`` over ``provided``.

    Tries corruption operators in a random order; if the gold query
    cannot even be expressed over the provided schema (missing tables or
    columns), falls back to a query over what is available — the honest
    behaviour of a model handed an inadequate schema.
    """
    provided_tables = {t.name.lower() for t in provided.tables}
    expressible = all(t.lower() in provided_tables for t in query.tables_used())
    if expressible:
        for t, cols in query.columns_used().items():
            table = provided.table(t)
            if not all(table.has_column(c) for c in cols):
                expressible = False
                break
    if not expressible:
        return _fallback_query(provided, rng)

    operators = [
        _swap_column,
        _perturb_literal,
        _swap_aggregate,
        _drop_condition,
        _flip_order,
    ]
    order = rng.permutation(len(operators))
    for idx in order:
        op = operators[int(idx)]
        corrupted = (
            op(query, provided, rng) if op is _swap_column else op(query, rng)
        )
        if corrupted is not None and corrupted != query:
            return corrupted
    return _fallback_query(provided, rng)
